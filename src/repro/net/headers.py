"""Ethernet, IPv4, UDP, and TCP header codecs.

Headers are mutable dataclass-style objects with real ``pack``/``unpack``
round-trips; the Click dataplane elements operate on these rather than on
raw bytes, but serialization is exercised by the trace writer and tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import PacketError
from .addresses import IPv4Address, MACAddress
from .checksum import internet_checksum

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ESP = 50

ETHERNET_HEADER_BYTES = 14
IPV4_MIN_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
TCP_MIN_HEADER_BYTES = 20

#: Shared all-zero MAC used as the header default.  MACAddress is
#: immutable and header fields are only ever *reassigned* (never mutated
#: in place), so one instance can back every fresh header -- packet
#: construction is a per-packet hot path in the traffic generators.
_ZERO_MAC = MACAddress(0)


@dataclass
class EthernetHeader:
    """An Ethernet II header (no 802.1Q tag)."""

    dst: MACAddress = field(default_factory=lambda: _ZERO_MAC)
    src: MACAddress = field(default_factory=lambda: _ZERO_MAC)
    ethertype: int = ETHERTYPE_IPV4

    def pack(self) -> bytes:
        """Serialize to 14 wire bytes."""
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack("!H", self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        """Parse the first 14 bytes of ``data``."""
        if len(data) < ETHERNET_HEADER_BYTES:
            raise PacketError("truncated Ethernet header (%d bytes)" % len(data))
        dst = MACAddress.from_bytes(data[0:6])
        src = MACAddress.from_bytes(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype)


@dataclass
class IPv4Header:
    """An IPv4 header without options (IHL = 5)."""

    src: IPv4Address = field(default_factory=lambda: IPv4Address(0))
    dst: IPv4Address = field(default_factory=lambda: IPv4Address(0))
    ttl: int = 64
    proto: int = PROTO_UDP
    total_length: int = IPV4_MIN_HEADER_BYTES
    identification: int = 0
    dscp: int = 0
    flags: int = 0
    fragment_offset: int = 0
    checksum: int = 0

    def header_length(self) -> int:
        """Header length in bytes (always 20: options unsupported)."""
        return IPV4_MIN_HEADER_BYTES

    def pack(self, *, recompute_checksum: bool = True) -> bytes:
        """Serialize to 20 wire bytes, recomputing the checksum by default."""
        if recompute_checksum:
            self.checksum = 0
            raw = self._pack_raw()
            self.checksum = internet_checksum(raw)
        return self._pack_raw()

    def _pack_raw(self) -> bytes:
        version_ihl = (4 << 4) | 5
        flags_frag = ((self.flags & 0x7) << 13) | (self.fragment_offset & 0x1FFF)
        return struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            self.dscp & 0xFF,
            self.total_length & 0xFFFF,
            self.identification & 0xFFFF,
            flags_frag,
            self.ttl & 0xFF,
            self.proto & 0xFF,
            self.checksum & 0xFFFF,
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        """Parse the first 20 bytes of ``data``; rejects non-IPv4/options."""
        if len(data) < IPV4_MIN_HEADER_BYTES:
            raise PacketError("truncated IPv4 header (%d bytes)" % len(data))
        (version_ihl, dscp, total_length, identification, flags_frag,
         ttl, proto, checksum, src, dst) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        version = version_ihl >> 4
        ihl = version_ihl & 0xF
        if version != 4:
            raise PacketError("not an IPv4 packet (version=%d)" % version)
        if ihl != 5:
            raise PacketError("IPv4 options unsupported (ihl=%d)" % ihl)
        return cls(
            src=IPv4Address.from_bytes(src),
            dst=IPv4Address.from_bytes(dst),
            ttl=ttl,
            proto=proto,
            total_length=total_length,
            identification=identification,
            dscp=dscp,
            flags=(flags_frag >> 13) & 0x7,
            fragment_offset=flags_frag & 0x1FFF,
            checksum=checksum,
        )


@dataclass
class UDPHeader:
    """A UDP header."""

    src_port: int = 0
    dst_port: int = 0
    length: int = UDP_HEADER_BYTES
    checksum: int = 0

    def pack(self) -> bytes:
        """Serialize to 8 wire bytes."""
        return struct.pack("!HHHH", self.src_port & 0xFFFF, self.dst_port & 0xFFFF,
                           self.length & 0xFFFF, self.checksum & 0xFFFF)

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        """Parse the first 8 bytes of ``data``."""
        if len(data) < UDP_HEADER_BYTES:
            raise PacketError("truncated UDP header (%d bytes)" % len(data))
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:8])
        return cls(src_port=src_port, dst_port=dst_port, length=length,
                   checksum=checksum)


@dataclass
class TCPHeader:
    """A TCP header without options (data offset = 5)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    def pack(self) -> bytes:
        """Serialize to 20 wire bytes."""
        offset_flags = (5 << 12) | (self.flags & 0x1FF)
        return struct.pack(
            "!HHIIHHHH",
            self.src_port & 0xFFFF,
            self.dst_port & 0xFFFF,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            offset_flags,
            self.window & 0xFFFF,
            self.checksum & 0xFFFF,
            self.urgent & 0xFFFF,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        """Parse the first 20 bytes of ``data``."""
        if len(data) < TCP_MIN_HEADER_BYTES:
            raise PacketError("truncated TCP header (%d bytes)" % len(data))
        (src_port, dst_port, seq, ack, offset_flags, window, checksum,
         urgent) = struct.unpack("!HHIIHHHH", data[:20])
        return cls(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
                   flags=offset_flags & 0x1FF, window=window,
                   checksum=checksum, urgent=urgent)
