"""Structure-of-arrays packet batches for the vectorized dataplane.

RouteBricks' thesis is that per-packet overhead, not raw compute, caps
software-router throughput (Sec. 3.2, Table 1).  The scalar dataplane
pays that overhead at the Python level too: one ``receive -> process ->
push`` round trip per element per packet.  :class:`PacketBatch` is the
amortization vehicle: one poll burst becomes numpy columns (length,
destination address, TTL, checksum, ...) over a shared packet list, so a
batch-native element (``Element.process_batch``) touches each column
once per burst instead of each packet once per element.

Two construction modes:

* :meth:`PacketBatch.from_packets` gathers columns from existing
  :class:`~repro.net.packet.Packet` objects (the RX-ring drain path);
* :meth:`PacketBatch.from_columns` starts from columns alone, with a
  factory that materializes a real ``Packet`` lazily -- traffic
  generators use this so unobserved packets never pay Python header
  construction.

Column mutations (TTL decrement, Ethernet re-encap, annotations written
by lookup/paint elements) are buffered in the arrays and flushed to the
underlying packet objects by :meth:`sync` -- called automatically at the
scalar boundary (the base-class ``process_batch`` fallback) and by the
TX endpoint, so scalar code always sees packets in the same state the
scalar pipeline would have produced.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from .headers import ETHERTYPE_IPV4
from .packet import Packet

#: Sentinel for "no paint annotation" in the int paint column.
NO_PAINT = -1


class PacketBatch:
    """One burst of packets as numpy columns over a shared packet list.

    Columns (all length-``n``):

    ``lengths``
        int64 frame lengths (``Packet.length``).
    ``has_ip``
        bool; False rows have zeroed IP columns.
    ``ethertype``, ``ttl``, ``proto``, ``total_length``, ``checksum``
        int32/int16 header fields (checksum is int64 for arithmetic
        headroom in the vectorized RFC 1624 update).
    ``dst``, ``src``
        uint32 IPv4 addresses.

    Lazily-allocated object columns ``next_hop``/``next_hop_mac`` and
    the int ``paint`` column buffer annotation writes; ``sync`` flushes
    them into ``packet.annotations`` exactly as the scalar elements
    would have written them.
    """

    __slots__ = (
        "packets", "lengths", "has_ip", "ethertype", "dst", "src",
        "ttl", "proto", "total_length", "checksum",
        "next_hop", "next_hop_mac", "paint",
        "eth_src", "eth_ethertype",
        "traced", "_materialize", "_ip_dirty", "_eth_dirty",
    )

    def __init__(self):
        self.packets: List[Optional[Packet]] = []
        self.traced: List[tuple] = []  # (row index, PathTrace)
        self.next_hop = None
        self.next_hop_mac = None
        self.paint = None
        self.eth_src = None       # MACAddress applied batch-wide on sync
        self.eth_ethertype = None
        self._materialize: Optional[Callable[[int], Packet]] = None
        self._ip_dirty = False
        self._eth_dirty = False

    # -- construction ------------------------------------------------------

    @classmethod
    def from_packets(cls, packets: Sequence[Packet],
                     trace_key: Optional[str] = None) -> "PacketBatch":
        """Gather columns from real packets (the RX-ring drain path).

        ``trace_key`` names the annotation under which in-flight path
        traces ride (``repro.obs.trace.TRACE_ANNOTATION``); matching
        rows are collected into :attr:`traced` so batch-aware elements
        can record hops without a per-packet dict probe downstream.
        """
        batch = cls()
        n = len(packets)
        batch.packets = list(packets)
        lengths = np.empty(n, dtype=np.int64)
        has_ip = np.zeros(n, dtype=bool)
        ethertype = np.empty(n, dtype=np.int32)
        dst = np.zeros(n, dtype=np.uint32)
        src = np.zeros(n, dtype=np.uint32)
        ttl = np.zeros(n, dtype=np.int16)
        proto = np.zeros(n, dtype=np.int16)
        total_length = np.zeros(n, dtype=np.int32)
        checksum = np.zeros(n, dtype=np.int64)
        traced = batch.traced
        for i, packet in enumerate(packets):
            lengths[i] = packet.length
            ethertype[i] = packet.eth.ethertype
            ip = packet.ip
            if ip is not None:
                has_ip[i] = True
                dst[i] = ip.dst.value
                src[i] = ip.src.value
                ttl[i] = ip.ttl
                proto[i] = ip.proto
                total_length[i] = ip.total_length
                checksum[i] = ip.checksum
            if trace_key is not None:
                trace = packet.annotations.get(trace_key)
                if trace is not None:
                    traced.append((i, trace))
        batch.lengths = lengths
        batch.has_ip = has_ip
        batch.ethertype = ethertype
        batch.dst = dst
        batch.src = src
        batch.ttl = ttl
        batch.proto = proto
        batch.total_length = total_length
        batch.checksum = checksum
        return batch

    @classmethod
    def from_columns(cls, lengths, dst, src, ttl, proto, total_length,
                     checksum=None, ethertype=ETHERTYPE_IPV4,
                     materialize: Optional[Callable[[int], Packet]] = None
                     ) -> "PacketBatch":
        """Build a batch from columns alone (traffic-generator path).

        ``materialize(i)`` must return a real :class:`Packet` equivalent
        to row ``i``'s *initial* state; :meth:`packet` calls it lazily
        and caches the result, and :meth:`sync` overlays any column
        mutations afterwards.
        """
        batch = cls()
        batch.lengths = np.asarray(lengths, dtype=np.int64)
        n = len(batch.lengths)
        batch.dst = np.asarray(dst, dtype=np.uint32)
        batch.src = np.asarray(src, dtype=np.uint32)
        batch.ttl = np.asarray(ttl, dtype=np.int16)
        batch.proto = np.asarray(proto, dtype=np.int16)
        batch.total_length = np.asarray(total_length, dtype=np.int32)
        batch.checksum = (np.zeros(n, dtype=np.int64) if checksum is None
                          else np.asarray(checksum, dtype=np.int64))
        batch.ethertype = np.full(n, ethertype, dtype=np.int32) \
            if np.isscalar(ethertype) \
            else np.asarray(ethertype, dtype=np.int32)
        batch.has_ip = np.ones(n, dtype=bool)
        batch.packets = [None] * n
        batch._materialize = materialize
        return batch

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.packets)

    @property
    def total_bytes(self) -> int:
        """Sum of frame lengths (exact: integer column)."""
        return int(self.lengths.sum())

    def packet(self, index: int) -> Packet:
        """Row ``index`` as a real packet, materializing lazily."""
        packet = self.packets[index]
        if packet is None:
            if self._materialize is None:
                raise ValueError("batch row %d has no packet and no "
                                 "materializer" % index)
            packet = self._materialize(index)
            self.packets[index] = packet
        return packet

    def materialize_all(self) -> List[Packet]:
        """Every row as a real packet (scalar-boundary helper)."""
        return [self.packet(i) for i in range(len(self.packets))]

    # -- splitting ---------------------------------------------------------

    def select(self, mask_or_indices) -> "PacketBatch":
        """Sub-batch of the rows picked by a bool mask or index array.

        Row order is preserved, so per-queue push order downstream is
        identical to the scalar path's.  Column arrays are copies (numpy
        fancy indexing); packet objects are shared with the parent.
        """
        indices = np.asarray(mask_or_indices)
        if indices.dtype == bool:
            indices = np.nonzero(indices)[0]
        sub = PacketBatch()
        sub.lengths = self.lengths[indices]
        sub.has_ip = self.has_ip[indices]
        sub.ethertype = self.ethertype[indices]
        sub.dst = self.dst[indices]
        sub.src = self.src[indices]
        sub.ttl = self.ttl[indices]
        sub.proto = self.proto[indices]
        sub.total_length = self.total_length[indices]
        sub.checksum = self.checksum[indices]
        for column in ("next_hop", "next_hop_mac", "paint"):
            value = getattr(self, column)
            if value is not None:
                setattr(sub, column, value[indices])
        sub.eth_src = self.eth_src
        sub.eth_ethertype = self.eth_ethertype
        sub._ip_dirty = self._ip_dirty
        sub._eth_dirty = self._eth_dirty
        parent_packets = self.packets
        sub.packets = [parent_packets[int(i)] for i in indices]
        if self._materialize is not None:
            parent = self
            rows = indices
            sub._materialize = lambda j: parent.packet(int(rows[j]))
        if self.traced:
            position = {int(row): pos for pos, row in enumerate(indices)}
            sub.traced = [(position[i], trace) for i, trace in self.traced
                          if i in position]
        return sub

    # -- annotation columns ------------------------------------------------

    def paint_column(self) -> np.ndarray:
        """The paint column, allocating it (all :data:`NO_PAINT`) on
        first use."""
        if self.paint is None:
            self.paint = np.full(len(self.packets), NO_PAINT,
                                 dtype=np.int64)
        return self.paint

    def route_columns(self):
        """The ``next_hop``/``next_hop_mac`` object columns, allocated
        on first use (rows default to None = no route annotation)."""
        if self.next_hop is None:
            n = len(self.packets)
            self.next_hop = np.full(n, None, dtype=object)
            self.next_hop_mac = np.full(n, None, dtype=object)
        return self.next_hop, self.next_hop_mac

    def mark_ip_dirty(self) -> None:
        self._ip_dirty = True

    def mark_eth_dirty(self) -> None:
        self._eth_dirty = True

    # -- the scalar boundary -----------------------------------------------

    def sync(self) -> List[Packet]:
        """Flush column mutations into the packet objects.

        Returns the fully materialized packet list.  After ``sync`` the
        packets are byte-for-byte what the scalar element chain would
        have produced: TTL/checksum from the IP columns, Ethernet
        re-encap fields, and ``next_hop``/``next_hop_mac``/``paint``
        annotations where the batch elements set them.
        """
        packets = self.materialize_all()
        if self._ip_dirty:
            ttl = self.ttl
            checksum = self.checksum
            has_ip = self.has_ip
            for i, packet in enumerate(packets):
                if has_ip[i] and packet.ip is not None:
                    packet.ip.ttl = int(ttl[i])
                    packet.ip.checksum = int(checksum[i])
        if self._eth_dirty:
            eth_src = self.eth_src
            eth_type = self.eth_ethertype
            macs = self.next_hop_mac
            for i, packet in enumerate(packets):
                eth = packet.eth
                if macs is not None and macs[i] is not None:
                    eth.dst = macs[i]
                if eth_src is not None:
                    eth.src = eth_src
                if eth_type is not None:
                    eth.ethertype = eth_type
        if self.next_hop is not None:
            hops = self.next_hop
            macs = self.next_hop_mac
            for i, packet in enumerate(packets):
                if hops[i] is not None:
                    packet.annotations["next_hop"] = hops[i]
                    packet.annotations["next_hop_mac"] = macs[i]
        if self.paint is not None:
            paint = self.paint
            for i, packet in enumerate(packets):
                if paint[i] != NO_PAINT:
                    packet.annotations["paint"] = int(paint[i])
        self._ip_dirty = False
        self._eth_dirty = False
        return packets

    def __repr__(self):
        return "<PacketBatch n=%d bytes=%d>" % (len(self.packets),
                                                self.total_bytes)
