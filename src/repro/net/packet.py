"""The packet object that flows through the simulated dataplane.

A :class:`Packet` carries parsed headers plus simulation metadata (arrival
timestamps, ingress port, per-flow sequence numbers used by the reordering
metric, and VLB annotations such as the chosen output node).  The payload is
represented by its length alone unless bytes are attached -- simulating a
64-byte packet should not cost 64 bytes of Python string churn, but the
functional paths (checksums, encryption) operate on real bytes when present.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import PacketError
from .addresses import IPv4Address
from .flows import FiveTuple
from .headers import (
    ETHERNET_HEADER_BYTES,
    ETHERTYPE_IPV4,
    EthernetHeader,
    IPV4_MIN_HEADER_BYTES,
    IPv4Header,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
)

_packet_ids = itertools.count()


class Packet:
    """A network packet plus simulation metadata.

    Attributes
    ----------
    length:
        Total frame length in bytes (Ethernet header included).
    eth, ip, l4:
        Parsed headers; ``l4`` is a UDP or TCP header or ``None``.
    payload:
        Raw payload bytes, or ``None`` when only the length is simulated.
    flow_seq:
        Per-flow sequence number stamped by the traffic generator; the
        reordering metric compares egress order against it.
    ingress_node, egress_node:
        Cluster node ids assigned by the VLB router.
    arrival_time, departure_time:
        Simulation timestamps (seconds).
    """

    __slots__ = (
        "packet_id", "length", "eth", "ip", "l4", "payload",
        "flow_seq", "ingress_node", "egress_node", "path",
        "arrival_time", "departure_time", "annotations",
    )

    def __init__(self, length: int, eth: Optional[EthernetHeader] = None,
                 ip: Optional[IPv4Header] = None, l4=None,
                 payload: Optional[bytes] = None):
        if length < ETHERNET_HEADER_BYTES:
            raise PacketError("frame length %d below Ethernet minimum" % length)
        self.packet_id = next(_packet_ids)
        self.length = length
        self.eth = eth if eth is not None else EthernetHeader()
        self.ip = ip
        self.l4 = l4
        self.payload = payload
        self.flow_seq = 0
        self.ingress_node = None
        self.egress_node = None
        self.path = []
        self.arrival_time = 0.0
        self.departure_time = 0.0
        self.annotations = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def udp(cls, src, dst, length: int = 64, src_port: int = 1024,
            dst_port: int = 80, ttl: int = 64,
            payload: Optional[bytes] = None) -> "Packet":
        """Build a UDP-in-IPv4-in-Ethernet packet of total frame ``length``."""
        # IPv4Address is immutable: callers that already hold one (the
        # workload generators' pre-built flow tables) share it as-is.
        if not isinstance(src, IPv4Address):
            src = IPv4Address(src)
        if not isinstance(dst, IPv4Address):
            dst = IPv4Address(dst)
        ip = IPv4Header(src=src, dst=dst, ttl=ttl,
                        proto=PROTO_UDP,
                        total_length=max(length - ETHERNET_HEADER_BYTES,
                                         IPV4_MIN_HEADER_BYTES))
        l4 = UDPHeader(src_port=src_port, dst_port=dst_port,
                       length=ip.total_length - IPV4_MIN_HEADER_BYTES)
        eth = EthernetHeader(ethertype=ETHERTYPE_IPV4)
        return cls(length=length, eth=eth, ip=ip, l4=l4, payload=payload)

    @classmethod
    def tcp(cls, src, dst, length: int = 64, src_port: int = 1024,
            dst_port: int = 80, seq: int = 0, ttl: int = 64) -> "Packet":
        """Build a TCP-in-IPv4-in-Ethernet packet of total frame ``length``."""
        ip = IPv4Header(src=IPv4Address(src), dst=IPv4Address(dst), ttl=ttl,
                        proto=PROTO_TCP,
                        total_length=max(length - ETHERNET_HEADER_BYTES,
                                         IPV4_MIN_HEADER_BYTES))
        l4 = TCPHeader(src_port=src_port, dst_port=dst_port, seq=seq)
        eth = EthernetHeader(ethertype=ETHERTYPE_IPV4)
        return cls(length=length, eth=eth, ip=ip, l4=l4, payload=None)

    # -- flow identity ----------------------------------------------------

    def five_tuple(self) -> FiveTuple:
        """The packet's flow key; raises for non-IP packets."""
        if self.ip is None:
            raise PacketError("packet %d has no IP header" % self.packet_id)
        src_port = getattr(self.l4, "src_port", 0)
        dst_port = getattr(self.l4, "dst_port", 0)
        return FiveTuple(src=self.ip.src, dst=self.ip.dst,
                         proto=self.ip.proto, src_port=src_port,
                         dst_port=dst_port)

    # -- serialization ----------------------------------------------------

    def pack(self) -> bytes:
        """Serialize headers + payload, padding to the frame length."""
        parts = [self.eth.pack()]
        if self.ip is not None:
            parts.append(self.ip.pack())
        if self.l4 is not None:
            parts.append(self.l4.pack())
        if self.payload is not None:
            parts.append(self.payload)
        raw = b"".join(parts)
        if len(raw) > self.length:
            raise PacketError(
                "headers/payload (%d B) exceed frame length %d"
                % (len(raw), self.length))
        return raw + b"\x00" * (self.length - len(raw))

    @classmethod
    def unpack(cls, data: bytes) -> "Packet":
        """Parse a full frame; non-IPv4 frames keep only the Ethernet header."""
        eth = EthernetHeader.unpack(data)
        ip = None
        l4 = None
        payload = None
        if eth.ethertype == ETHERTYPE_IPV4:
            ip = IPv4Header.unpack(data[ETHERNET_HEADER_BYTES:])
            l4_offset = ETHERNET_HEADER_BYTES + ip.header_length()
            if ip.proto == PROTO_UDP:
                l4 = UDPHeader.unpack(data[l4_offset:])
                payload = data[l4_offset + 8:]
            elif ip.proto == PROTO_TCP:
                l4 = TCPHeader.unpack(data[l4_offset:])
                payload = data[l4_offset + 20:]
            else:
                payload = data[l4_offset:]
        packet = cls(length=len(data), eth=eth, ip=ip, l4=l4, payload=payload)
        return packet

    def copy(self) -> "Packet":
        """A shallow-ish copy with fresh identity (headers are re-created)."""
        clone = Packet(self.length,
                       eth=EthernetHeader(dst=self.eth.dst, src=self.eth.src,
                                          ethertype=self.eth.ethertype),
                       ip=None if self.ip is None else IPv4Header(
                           src=self.ip.src, dst=self.ip.dst, ttl=self.ip.ttl,
                           proto=self.ip.proto,
                           total_length=self.ip.total_length,
                           identification=self.ip.identification,
                           checksum=self.ip.checksum),
                       l4=self.l4, payload=self.payload)
        clone.flow_seq = self.flow_seq
        return clone

    def __repr__(self):
        if self.ip is not None:
            return "<Packet #%d %s->%s len=%d>" % (
                self.packet_id, self.ip.src, self.ip.dst, self.length)
        return "<Packet #%d len=%d>" % (self.packet_id, self.length)
