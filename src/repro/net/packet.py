"""The packet object that flows through the simulated dataplane.

A :class:`Packet` carries parsed headers plus simulation metadata (arrival
timestamps, ingress port, per-flow sequence numbers used by the reordering
metric, and VLB annotations such as the chosen output node).  The payload is
represented by its length alone unless bytes are attached -- simulating a
64-byte packet should not cost 64 bytes of Python string churn, but the
functional paths (checksums, encryption) operate on real bytes when present.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import PacketError
from .addresses import IPv4Address
from .flows import FiveTuple
from .headers import (
    ETHERNET_HEADER_BYTES,
    ETHERTYPE_IPV4,
    EthernetHeader,
    IPV4_MIN_HEADER_BYTES,
    IPv4Header,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
)
from .addresses import MACAddress

_packet_ids = itertools.count()

#: Cluster MACs encode a node id in the low byte, so a simulation only
#: ever sees a handful of distinct values -- worth interning on decode.
_mac_cache = {}


def _mac(value: int) -> MACAddress:
    mac = _mac_cache.get(value)
    if mac is None:
        mac = _mac_cache[value] = MACAddress(value)
    return mac


class Packet:
    """A network packet plus simulation metadata.

    Attributes
    ----------
    length:
        Total frame length in bytes (Ethernet header included).
    eth, ip, l4:
        Parsed headers; ``l4`` is a UDP or TCP header or ``None``.
    payload:
        Raw payload bytes, or ``None`` when only the length is simulated.
    flow_seq:
        Per-flow sequence number stamped by the traffic generator; the
        reordering metric compares egress order against it.
    ingress_node, egress_node:
        Cluster node ids assigned by the VLB router.
    arrival_time, departure_time:
        Simulation timestamps (seconds).
    """

    __slots__ = (
        "packet_id", "length", "eth", "ip", "l4", "payload",
        "flow_seq", "ingress_node", "egress_node", "path",
        "arrival_time", "departure_time", "annotations",
    )

    def __init__(self, length: int, eth: Optional[EthernetHeader] = None,
                 ip: Optional[IPv4Header] = None, l4=None,
                 payload: Optional[bytes] = None):
        if length < ETHERNET_HEADER_BYTES:
            raise PacketError("frame length %d below Ethernet minimum" % length)
        self.packet_id = next(_packet_ids)
        self.length = length
        self.eth = eth if eth is not None else EthernetHeader()
        self.ip = ip
        self.l4 = l4
        self.payload = payload
        self.flow_seq = 0
        self.ingress_node = None
        self.egress_node = None
        self.path = []
        self.arrival_time = 0.0
        self.departure_time = 0.0
        self.annotations = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def udp(cls, src, dst, length: int = 64, src_port: int = 1024,
            dst_port: int = 80, ttl: int = 64,
            payload: Optional[bytes] = None) -> "Packet":
        """Build a UDP-in-IPv4-in-Ethernet packet of total frame ``length``."""
        # IPv4Address is immutable: callers that already hold one (the
        # workload generators' pre-built flow tables) share it as-is.
        if not isinstance(src, IPv4Address):
            src = IPv4Address(src)
        if not isinstance(dst, IPv4Address):
            dst = IPv4Address(dst)
        ip = IPv4Header(src=src, dst=dst, ttl=ttl,
                        proto=PROTO_UDP,
                        total_length=max(length - ETHERNET_HEADER_BYTES,
                                         IPV4_MIN_HEADER_BYTES))
        l4 = UDPHeader(src_port=src_port, dst_port=dst_port,
                       length=ip.total_length - IPV4_MIN_HEADER_BYTES)
        eth = EthernetHeader(ethertype=ETHERTYPE_IPV4)
        return cls(length=length, eth=eth, ip=ip, l4=l4, payload=payload)

    @classmethod
    def tcp(cls, src, dst, length: int = 64, src_port: int = 1024,
            dst_port: int = 80, seq: int = 0, ttl: int = 64) -> "Packet":
        """Build a TCP-in-IPv4-in-Ethernet packet of total frame ``length``."""
        ip = IPv4Header(src=IPv4Address(src), dst=IPv4Address(dst), ttl=ttl,
                        proto=PROTO_TCP,
                        total_length=max(length - ETHERNET_HEADER_BYTES,
                                         IPV4_MIN_HEADER_BYTES))
        l4 = TCPHeader(src_port=src_port, dst_port=dst_port, seq=seq)
        eth = EthernetHeader(ethertype=ETHERTYPE_IPV4)
        return cls(length=length, eth=eth, ip=ip, l4=l4, payload=None)

    # -- flow identity ----------------------------------------------------

    def five_tuple(self) -> FiveTuple:
        """The packet's flow key; raises for non-IP packets."""
        if self.ip is None:
            raise PacketError("packet %d has no IP header" % self.packet_id)
        src_port = getattr(self.l4, "src_port", 0)
        dst_port = getattr(self.l4, "dst_port", 0)
        return FiveTuple(src=self.ip.src, dst=self.ip.dst,
                         proto=self.ip.proto, src_port=src_port,
                         dst_port=dst_port)

    # -- serialization ----------------------------------------------------

    def pack(self) -> bytes:
        """Serialize headers + payload, padding to the frame length."""
        parts = [self.eth.pack()]
        if self.ip is not None:
            parts.append(self.ip.pack())
        if self.l4 is not None:
            parts.append(self.l4.pack())
        if self.payload is not None:
            parts.append(self.payload)
        raw = b"".join(parts)
        if len(raw) > self.length:
            raise PacketError(
                "headers/payload (%d B) exceed frame length %d"
                % (len(raw), self.length))
        return raw + b"\x00" * (self.length - len(raw))

    @classmethod
    def unpack(cls, data: bytes) -> "Packet":
        """Parse a full frame; non-IPv4 frames keep only the Ethernet header."""
        eth = EthernetHeader.unpack(data)
        ip = None
        l4 = None
        payload = None
        if eth.ethertype == ETHERTYPE_IPV4:
            ip = IPv4Header.unpack(data[ETHERNET_HEADER_BYTES:])
            l4_offset = ETHERNET_HEADER_BYTES + ip.header_length()
            if ip.proto == PROTO_UDP:
                l4 = UDPHeader.unpack(data[l4_offset:])
                payload = data[l4_offset + 8:]
            elif ip.proto == PROTO_TCP:
                l4 = TCPHeader.unpack(data[l4_offset:])
                payload = data[l4_offset + 20:]
            else:
                payload = data[l4_offset:]
        packet = cls(length=len(data), eth=eth, ip=ip, l4=l4, payload=payload)
        return packet

    def copy(self) -> "Packet":
        """A shallow-ish copy with fresh identity (headers are re-created)."""
        clone = Packet(self.length,
                       eth=EthernetHeader(dst=self.eth.dst, src=self.eth.src,
                                          ethertype=self.eth.ethertype),
                       ip=None if self.ip is None else IPv4Header(
                           src=self.ip.src, dst=self.ip.dst, ttl=self.ip.ttl,
                           proto=self.ip.proto,
                           total_length=self.ip.total_length,
                           identification=self.ip.identification,
                           checksum=self.ip.checksum),
                       l4=self.l4, payload=self.payload)
        clone.flow_seq = self.flow_seq
        return clone

    # -- wire encoding (partition boundaries) ------------------------------

    def to_wire(self):
        """Encode the packet as a compact picklable tuple.

        This is the hot-path encoding used when a packet crosses a
        partition boundary in the parallel DES runner: headers collapse to
        plain ints so the record pickles without touching the address
        types, and :meth:`from_wire` restores the packet *losslessly* --
        including ``packet_id`` (no new id is drawn).
        """
        ip = self.ip
        l4 = self.l4
        if l4 is None:
            l4w = None
        elif type(l4) is UDPHeader:
            l4w = (0, l4.src_port, l4.dst_port, l4.length, l4.checksum)
        elif type(l4) is TCPHeader:
            l4w = (1, l4.src_port, l4.dst_port, l4.seq, l4.ack, l4.flags,
                   l4.window, l4.checksum, l4.urgent)
        else:
            l4w = (2, l4)  # uncommon header types ride as objects
        return (
            self.packet_id, self.length,
            self.eth.dst.value, self.eth.src.value, self.eth.ethertype,
            None if ip is None else (
                ip.src.value, ip.dst.value, ip.ttl, ip.proto,
                ip.total_length, ip.identification, ip.dscp, ip.flags,
                ip.fragment_offset, ip.checksum),
            l4w, self.payload, self.flow_seq,
            self.ingress_node, self.egress_node, tuple(self.path),
            self.arrival_time, self.departure_time,
            dict(self.annotations) if self.annotations else None,
        )

    @classmethod
    def from_wire(cls, wire) -> "Packet":
        """Rebuild a packet encoded by :meth:`to_wire`.

        Restores the original ``packet_id`` without consuming a fresh one,
        so decoding on a receiving partition cannot perturb packet
        identity.
        """
        (packet_id, length, eth_dst, eth_src, ethertype, ipw, l4w, payload,
         flow_seq, ingress_node, egress_node, path, arrival_time,
         departure_time, annotations) = wire
        packet = object.__new__(cls)
        packet.packet_id = packet_id
        packet.length = length
        packet.eth = EthernetHeader(dst=_mac(eth_dst), src=_mac(eth_src),
                                    ethertype=ethertype)
        if ipw is None:
            packet.ip = None
        else:
            packet.ip = IPv4Header(
                src=IPv4Address(ipw[0]), dst=IPv4Address(ipw[1]), ttl=ipw[2],
                proto=ipw[3], total_length=ipw[4], identification=ipw[5],
                dscp=ipw[6], flags=ipw[7], fragment_offset=ipw[8],
                checksum=ipw[9])
        if l4w is None:
            packet.l4 = None
        elif l4w[0] == 0:
            packet.l4 = UDPHeader(src_port=l4w[1], dst_port=l4w[2],
                                  length=l4w[3], checksum=l4w[4])
        elif l4w[0] == 1:
            packet.l4 = TCPHeader(src_port=l4w[1], dst_port=l4w[2],
                                  seq=l4w[3], ack=l4w[4], flags=l4w[5],
                                  window=l4w[6], checksum=l4w[7],
                                  urgent=l4w[8])
        else:
            packet.l4 = l4w[1]
        packet.payload = payload
        packet.flow_seq = flow_seq
        packet.ingress_node = ingress_node
        packet.egress_node = egress_node
        packet.path = list(path)
        packet.arrival_time = arrival_time
        packet.departure_time = departure_time
        packet.annotations = dict(annotations) if annotations else {}
        return packet

    def __reduce__(self):
        # Route pickle through the wire encoding: one lossless code path
        # for both serialization mechanisms, and unpickling never draws a
        # fresh packet id.
        return (Packet.from_wire, (self.to_wire(),))

    def __repr__(self):
        if self.ip is not None:
            return "<Packet #%d %s->%s len=%d>" % (
                self.packet_id, self.ip.src, self.ip.dst, self.length)
        return "<Packet #%d len=%d>" % (self.packet_id, self.length)
