"""Packet formats and protocol substrates.

This package implements the wire-level substrate the router operates on:
IPv4/MAC addresses, Ethernet/IPv4/UDP/TCP headers with real serialization,
Internet checksums (full and incremental), a :class:`Packet` object that
moves through the dataplane, and five-tuple flow identification with an
RSS-style hash used to spread flows across NIC queues.
"""

from .addresses import IPv4Address, MACAddress, Prefix
from .checksum import internet_checksum, incremental_checksum_update
from .headers import EthernetHeader, IPv4Header, TCPHeader, UDPHeader, ETHERTYPE_IPV4
from .packet import Packet
from .flows import FiveTuple, rss_hash

__all__ = [
    "IPv4Address",
    "MACAddress",
    "Prefix",
    "internet_checksum",
    "incremental_checksum_update",
    "EthernetHeader",
    "IPv4Header",
    "TCPHeader",
    "UDPHeader",
    "ETHERTYPE_IPV4",
    "Packet",
    "FiveTuple",
    "rss_hash",
]
