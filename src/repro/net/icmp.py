"""ICMP message codec and generation.

A real IP router answers TTL expiry with ICMP Time Exceeded (type 11) and
unroutable packets with Destination Unreachable (type 3); the dataplane's
``DecIPTTL``/``LookupIPRoute`` error ports feed an ICMP generator element.
The codec serializes per RFC 792: type, code, checksum, then the original
IP header + 8 payload bytes quoted back to the sender.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import PacketError
from .addresses import IPv4Address
from .checksum import internet_checksum
from .headers import ETHERNET_HEADER_BYTES, IPv4Header, PROTO_ICMP
from .packet import Packet

TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_ECHO_REQUEST = 8
TYPE_TIME_EXCEEDED = 11

CODE_NET_UNREACHABLE = 0
CODE_FRAG_NEEDED = 4
CODE_TTL_EXCEEDED = 0

ICMP_HEADER_BYTES = 8
#: RFC 792: quote the offending IP header plus the first 8 payload bytes.
QUOTED_PAYLOAD_BYTES = 8


@dataclass
class IcmpHeader:
    """Type/code/checksum plus the 4 'rest of header' bytes."""

    icmp_type: int
    code: int = 0
    checksum: int = 0
    rest: int = 0

    def pack(self, payload: bytes = b"", *, recompute_checksum: bool = True) -> bytes:
        """Serialize; the checksum covers header + payload."""
        if recompute_checksum:
            self.checksum = 0
            raw = self._pack_raw() + payload
            self.checksum = internet_checksum(raw)
        return self._pack_raw() + payload

    def _pack_raw(self) -> bytes:
        return struct.pack("!BBHI", self.icmp_type & 0xFF, self.code & 0xFF,
                           self.checksum & 0xFFFF, self.rest & 0xFFFFFFFF)

    @classmethod
    def unpack(cls, data: bytes) -> "IcmpHeader":
        if len(data) < ICMP_HEADER_BYTES:
            raise PacketError("truncated ICMP header (%d bytes)" % len(data))
        icmp_type, code, checksum, rest = struct.unpack("!BBHI", data[:8])
        return cls(icmp_type=icmp_type, code=code, checksum=checksum,
                   rest=rest)


def icmp_error_packet(offending: Packet, router_address: IPv4Address,
                      icmp_type: int, code: int = 0) -> Packet:
    """Build the ICMP error a router sends about ``offending``.

    Addressed router -> original sender; quotes the offending packet's IP
    header and first 8 payload bytes, per RFC 792.
    """
    if offending.ip is None:
        raise PacketError("cannot ICMP-report a non-IP packet")
    quoted = offending.pack()[ETHERNET_HEADER_BYTES:
                              ETHERNET_HEADER_BYTES + 20 + QUOTED_PAYLOAD_BYTES]
    header = IcmpHeader(icmp_type=icmp_type, code=code)
    body = header.pack(quoted)
    ip = IPv4Header(src=router_address, dst=offending.ip.src,
                    proto=PROTO_ICMP, ttl=64,
                    total_length=20 + len(body))
    packet = Packet(length=max(ETHERNET_HEADER_BYTES + ip.total_length, 64),
                    ip=ip, payload=body)
    packet.annotations["icmp_type"] = icmp_type
    packet.annotations["icmp_code"] = code
    return packet


def time_exceeded(offending: Packet, router_address: IPv4Address) -> Packet:
    """ICMP Time Exceeded (the DecIPTTL error path)."""
    return icmp_error_packet(offending, router_address,
                             TYPE_TIME_EXCEEDED, CODE_TTL_EXCEEDED)


def destination_unreachable(offending: Packet,
                            router_address: IPv4Address) -> Packet:
    """ICMP Destination Unreachable (the routing-miss path)."""
    return icmp_error_packet(offending, router_address,
                             TYPE_DEST_UNREACHABLE, CODE_NET_UNREACHABLE)


def fragmentation_needed(offending: Packet,
                         router_address: IPv4Address) -> Packet:
    """ICMP Fragmentation Needed (DF set but the egress MTU is smaller);
    the packet path-MTU discovery relies on."""
    return icmp_error_packet(offending, router_address,
                             TYPE_DEST_UNREACHABLE, CODE_FRAG_NEEDED)


def parse_icmp(packet: Packet) -> IcmpHeader:
    """Extract the ICMP header from a proto-1 packet."""
    if packet.ip is None or packet.ip.proto != PROTO_ICMP:
        raise PacketError("not an ICMP packet")
    if packet.payload is None:
        raise PacketError("ICMP packet carries no bytes")
    return IcmpHeader.unpack(packet.payload)
