"""Tests for the Sec. 8 discussion models (form factor, power, cost)."""

import pytest

from repro.core import discussion
from repro.errors import ConfigurationError


class TestEstimates:
    def test_rb4_reference_numbers(self):
        rb4 = discussion.rb4_estimate()
        assert rb4.power_kw == pytest.approx(2.6)
        assert rb4.cost_usd == 14_500
        assert rb4.capacity_gbps == 40
        assert rb4.rack_units == 4

    def test_power_overhead_about_60_percent(self):
        # Sec. 8: RB4 draws ~60 % more than a 40 Gbps hardware router.
        overhead = discussion.power_overhead_vs_reference(
            discussion.rb4_estimate())
        assert overhead == pytest.approx(0.625, abs=0.05)

    def test_cost_comparison(self):
        comparison = discussion.cost_comparison()
        assert comparison["ratio"] == pytest.approx(70_000 / 14_500)

    def test_cluster_estimate_scales_linearly(self):
        small = discussion.estimate_cluster(10)
        large = discussion.estimate_cluster(20)
        assert large.capacity_gbps == pytest.approx(2 * small.capacity_gbps)
        assert large.power_kw == pytest.approx(2 * small.power_kw)
        assert large.cost_usd == 2 * small.cost_usd

    def test_integrated_nics_add_power(self):
        plain = discussion.estimate_cluster(30)
        integrated = discussion.estimate_cluster(30, integrated_nics=True)
        assert integrated.power_kw > plain.power_kw
        # +48 W per server.
        assert integrated.power_kw - plain.power_kw == pytest.approx(
            30 * 0.048)

    def test_integrated_mesh_size_cap(self):
        # 2x10G + 30x1G on-board ports -> meshes of 30-40 servers.
        discussion.estimate_cluster(33, integrated_nics=True)
        with pytest.raises(ConfigurationError):
            discussion.estimate_cluster(50, integrated_nics=True)

    def test_form_factor_comparison(self):
        comparison = discussion.form_factor_comparison(33)
        # Sec. 8: 300-400 Gbps in 30-40U vs Cisco's 360 Gbps in 21U.
        assert comparison["cluster_gbps"] == 330
        assert comparison["cluster_rack_units"] == 33
        assert 0.4 < comparison["density_ratio"] < 0.8

    def test_next_gen_form_factor_gain(self):
        # The 4-socket follow-up shrinks form factor ~4x (Sec. 8).
        assert discussion.next_gen_form_factor_gain() == pytest.approx(4.0)

    def test_watts_per_gbps(self):
        rb4 = discussion.rb4_estimate()
        assert rb4.watts_per_gbps == pytest.approx(65.0)

    def test_rejects_empty_cluster(self):
        with pytest.raises(ConfigurationError):
            discussion.estimate_cluster(0)
