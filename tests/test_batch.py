"""Batch-native dataplane: PacketBatch semantics, scalar/batch
equivalence across every preset pipeline, and drop accounting.

The equivalence tests are the contract the fast path lives under:
``batch=True`` may only change wall-clock time.  Every forwarded/dropped
count, per-element counter, and compiled load vector must be *equal*
(integers) or byte-identical (floats follow the same operation chains).
"""

import pytest

from repro.click import (
    CheckIPHeader,
    Discard,
    PollDevice,
    Scheduler,
    ToDevice,
)
from repro.click.element import Element
from repro.click.elements.standard import Paint
from repro.click.pipelines import PRESET_PIPELINES
from repro.click.simrun import TimedForwardingRun, TimedPipelineRun
from repro.costs import compile_loads
from repro.hw import nehalem_server
from repro.net import Packet
from repro.net.batch import NO_PAINT, PacketBatch
from repro.obs.metrics import MetricsRegistry, use_registry

PACKET_BYTES = 64


def _udp(dst="10.1.0.5", length=64, ttl=64):
    return Packet.udp("192.168.0.1", dst, length=length, ttl=ttl)


class _ScalarSink(Element):
    """A sink with no batch override: batches reaching it go through the
    base-class fallback, which syncs column mutations into the packets."""

    n_outputs = 0

    def process(self, packet: Packet, port: int) -> None:
        self.drop(packet, "sink")


# -- PacketBatch unit tests --------------------------------------------------

class TestPacketBatch:
    def test_from_packets_gathers_columns(self):
        packets = [_udp(dst="10.%d.0.1" % i, length=64 + i, ttl=10 + i)
                   for i in range(4)]
        batch = PacketBatch.from_packets(packets)
        assert len(batch) == 4
        assert batch.total_bytes == sum(p.length for p in packets)
        assert list(batch.lengths) == [p.length for p in packets]
        assert list(batch.ttl) == [p.ip.ttl for p in packets]
        assert list(batch.dst) == [p.ip.dst.value for p in packets]
        assert batch.has_ip.all()

    def test_non_ip_rows_zeroed(self):
        batch = PacketBatch.from_packets([_udp(), Packet(length=64)])
        assert list(batch.has_ip) == [True, False]
        assert batch.dst[1] == 0

    def test_packet_returns_underlying_object(self):
        packets = [_udp(), _udp()]
        batch = PacketBatch.from_packets(packets)
        assert batch.packet(1) is packets[1]
        assert batch.materialize_all() == packets

    def test_select_by_mask_preserves_order(self):
        packets = [_udp(length=64 + i) for i in range(5)]
        batch = PacketBatch.from_packets(packets)
        sub = batch.select(batch.lengths >= 66)
        assert list(sub.lengths) == [66, 67, 68]
        assert sub.packet(0) is packets[2]

    def test_sync_flushes_ip_columns(self):
        packets = [_udp(ttl=9), _udp(ttl=5)]
        batch = PacketBatch.from_packets(packets)
        batch.ttl -= 1
        batch.checksum[:] = 7
        batch.mark_ip_dirty()
        out = batch.sync()
        assert [p.ip.ttl for p in out] == [8, 4]
        assert all(p.ip.checksum == 7 for p in out)

    def test_sync_flushes_paint_annotation(self):
        packets = [_udp(), _udp()]
        batch = PacketBatch.from_packets(packets)
        paint = batch.paint_column()
        assert (paint == NO_PAINT).all()
        paint[1] = 3
        batch.sync()
        assert "paint" not in packets[0].annotations
        assert packets[1].annotations["paint"] == 3

    def test_from_columns_materializes_lazily(self):
        made = []

        def materialize(i):
            made.append(i)
            return _udp(length=100 + i)

        batch = PacketBatch.from_columns(
            lengths=[100, 101], dst=[1, 2], src=[3, 4], ttl=[64, 64],
            proto=[17, 17], total_length=[86, 87],
            materialize=materialize)
        assert made == []
        assert batch.packet(1).length == 101
        assert made == [1]


# -- drop accounting ---------------------------------------------------------

class TestDropAccounting:
    def _bad(self):
        return Packet(length=64)  # no IP header -> invalid_header

    def test_scalar_drop_tags_cause(self):
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            check = CheckIPHeader()
        check.connect_to(Discard())
        check.receive(self._bad())
        check.receive(_udp())
        assert check.packets_dropped == 1
        series = registry._metrics["element_drops"].series()
        assert len(series) == 1
        (key, count), = series.items()
        assert "invalid_header" in key and count == 1

    def test_batch_drop_matches_scalar(self):
        def feed(batched):
            registry = MetricsRegistry(enabled=True)
            with use_registry(registry):
                check = CheckIPHeader()
            check.connect_to(Discard())
            packets = [self._bad(), _udp(), self._bad(), _udp(ttl=0)]
            if batched:
                check.receive_batch(PacketBatch.from_packets(packets), 0)
            else:
                for packet in packets:
                    check.receive(packet)
            return (check.packets_in, check.packets_dropped, check.invalid,
                    registry._metrics["element_drops"].series())

        assert feed(batched=False) == feed(batched=True)
        assert feed(batched=True)[1] == 3


# -- scheduler batch rounds --------------------------------------------------

class TestSchedulerBatchRounds:
    def _forwarding(self):
        server = nehalem_server(num_ports=2, queues_per_port=8)
        scheduler = Scheduler()
        thread = scheduler.spawn(server.cores[0])
        poll = PollDevice(server.port(0), queue_id=0)
        to_dev = ToDevice(server.port(1), queue_id=0)
        poll.connect_to(to_dev)
        thread.add_poll_task(poll)
        thread.own(to_dev)
        return server, scheduler, poll, to_dev

    def test_batch_round_matches_scalar(self):
        results = {}
        for batch in (False, True):
            server, scheduler, poll, to_dev = self._forwarding()
            for _ in range(10):
                server.port(0).rx_queues[0].push(_udp())
            moved = scheduler.run_rounds(2, batch=batch)
            results[batch] = (moved, poll.packets_in, poll.bytes_in,
                              poll.empty_polls, len(to_dev.drain()),
                              server.cores[0].cycles_used)
        assert results[False] == results[True]
        assert results[True][0] == 10


# -- scalar/batch equivalence over every preset pipeline ---------------------

def _pipeline_state(preset, batch):
    server = nehalem_server(num_ports=1, queues_per_port=2)
    run = TimedPipelineRun(server, preset, packet_bytes=PACKET_BYTES,
                           kp=8, kn=4, batch=batch)
    report = run.run(4e9, duration_sec=1e-3, seed=1)
    counters = {}
    for index, replica in enumerate(run.replicas):
        for element in replica.elements:
            counters[(index, element.name)] = (
                element.packets_in, element.bytes_in,
                element.packets_out, element.packets_dropped)
    loads = compile_loads(run.replicas[0].graph, packet_bytes=PACKET_BYTES)
    cycles = [core.cycles_used for core in server.cores]
    return (report.offered_packets, report.forwarded_packets,
            report.dropped_packets, report.empty_polls, report.total_polls,
            report.residual_backlog), counters, loads, cycles


@pytest.mark.parametrize("preset", sorted(PRESET_PIPELINES))
def test_preset_pipeline_scalar_batch_equivalence(preset):
    scalar = _pipeline_state(preset, batch=False)
    batched = _pipeline_state(preset, batch=True)
    assert scalar[0] == batched[0]   # report scalars
    assert scalar[1] == batched[1]   # every per-element counter
    assert scalar[2] == batched[2]   # compiled load vector
    assert scalar[3] == batched[3]   # per-core cycle charges
    assert scalar[0][1] > 0          # and the run actually forwarded


# -- forwarding-loop bit-identity (the obs fast path) ------------------------

def _forwarding_state(batch):
    registry = MetricsRegistry(enabled=True)
    server = nehalem_server()
    run = TimedForwardingRun(server, packet_bytes=PACKET_BYTES,
                             kp=32, kn=16, batch=batch, metrics=registry)
    report = run.run(5e9, duration_sec=1e-3, seed=3)
    snapshot = {}
    for name, metric in sorted(registry._metrics.items()):
        if name == "engine_wall_seconds":
            continue  # the only number allowed to differ
        if hasattr(metric, "series"):
            snapshot[name] = metric.series()
        else:  # Timeline
            snapshot[name] = {key: series.bins
                              for key, series in metric._series.items()}
    tracer = registry.tracer
    hops = [[(hop.site, hop.time, hop.note) for hop in trace.hops]
            for trace in tracer.traces]
    return ((report.offered_packets, report.forwarded_packets,
             report.dropped_packets, report.empty_polls, report.total_polls,
             report.residual_backlog, report.achieved_bps),
            snapshot, (tracer.seen, tracer.sampled), hops,
            [core.cycles_used for core in server.cores])


def test_forwarding_run_bit_identical_under_observability():
    scalar = _forwarding_state(batch=False)
    batched = _forwarding_state(batch=True)
    assert scalar == batched
    assert scalar[0][1] > 0


def test_batch_paint_column_equals_scalar_annotation():
    """A Paint->CheckIPHeader chain run as columns leaves the same
    annotations the scalar chain writes."""
    def run(batched):
        paint = Paint(5)
        paint.connect_to(_ScalarSink())
        packets = [_udp(), _udp()]
        if batched:
            paint.receive_batch(PacketBatch.from_packets(packets), 0)
        else:
            for packet in packets:
                paint.receive(packet)
        return [p.annotations.get("paint") for p in packets]

    assert run(batched=False) == run(batched=True) == [5, 5]
