"""Tests for the bottleneck explain layer (model vs DES cross-check)."""

import json

import pytest

from repro import calibration as cal
from repro.analysis.bottleneck import deconstruct
from repro.cli import main
from repro.obs import ExplainReport, explain_pipeline, format_explain
from repro.obs.explain import explain_from_registry
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_bench

#: Short DES windows keep the matrix fast; agreement is insensitive to
#: the window because the charged loads are per-packet constants.
_DURATION = 0.4e-3


@pytest.fixture(scope="module")
def matrix():
    """The acceptance matrix: every preset at 64 B and 1024 B."""
    out = {}
    for preset in ("forwarding", "routing", "ipsec"):
        for size in (64, 1024):
            out[(preset, size)] = explain_pipeline(
                preset, packet_bytes=size, duration_sec=_DURATION)
    return out


class TestAcceptanceMatrix:
    @pytest.mark.parametrize("preset", ["forwarding", "routing", "ipsec"])
    @pytest.mark.parametrize("size", [64, 1024])
    def test_observed_bottleneck_matches_model(self, matrix, preset, size):
        report = matrix[(preset, size)]
        assert report.agreement, (
            "%s @ %dB: DES observed %s but the model predicts %s"
            % (preset, size, report.observed_bottleneck,
               report.predicted_bottleneck))

    @pytest.mark.parametrize("preset", ["forwarding", "routing", "ipsec"])
    @pytest.mark.parametrize("size", [64, 1024])
    def test_matches_analysis_deconstruct(self, matrix, preset, size):
        report = matrix[(preset, size)]
        analytic = deconstruct(cal.APPLICATIONS[preset], size)
        assert report.predicted_bottleneck == analytic.bottleneck
        assert report.observed_bottleneck == analytic.bottleneck

    def test_latency_decomposition_conserves(self, matrix):
        for report in matrix.values():
            assert report.latency is not None
            assert report.latency["max_residual_fraction"] <= 0.01

    def test_headroom_of_binding_resource_is_unity(self, matrix):
        report = matrix[("forwarding", 64)]
        binding = report.predicted_bottleneck
        assert report.predicted_headroom[binding] == pytest.approx(1.0)
        for name, headroom in report.predicted_headroom.items():
            assert headroom >= 1.0 - 1e-9, name

    def test_observed_loads_match_predicted(self, matrix):
        # The DES charges the same calibrated vectors the compiler sums,
        # so per-packet loads agree closely (empty-poll correction and
        # partial batches account for the slack).
        report = matrix[("routing", 64)]
        for name, predicted in report.predicted_loads.items():
            observed = report.observed_loads[name]
            assert observed == pytest.approx(predicted, rel=0.05), name

    def test_top_elements_name_the_pipeline(self, matrix):
        report = matrix[("routing", 64)]
        names = [row["element"] for row in report.top_elements]
        assert "rt" in names  # LookupIPRoute dominates routing

    def test_report_serializes(self, matrix):
        report = matrix[("forwarding", 64)]
        data = report.to_dict()
        json.dumps(data)  # must be JSON-clean
        assert data["predicted_bottleneck"] == report.predicted_bottleneck
        assert "agreement" in report.summary() or "Explain" in str(report)

    def test_transcript_mentions_both_sides(self, matrix):
        text = format_explain(matrix[("ipsec", 64)])
        assert "predicted (analytic)" in text
        assert "observed (DES" in text
        assert "agrees with the analytic model" in text
        assert "latency decomposition" in text


class TestExplainInputs:
    def test_rejects_silly_load_fraction(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            explain_pipeline("forwarding", load_fraction=1.5)

    def test_accepts_raw_click_text(self):
        report = explain_pipeline(
            "src :: PollDevice(0); dst :: ToDevice(0); src -> dst;",
            duration_sec=_DURATION)
        assert isinstance(report, ExplainReport)
        assert report.pipeline == "<click text>"


class TestExplainFromRegistry:
    def test_section_shape(self):
        from repro.click.simrun import TimedPipelineRun
        from repro.hw import nehalem_server
        registry = MetricsRegistry(enabled=True, profile=True,
                                   trace_sample_every=16)
        run = TimedPipelineRun(nehalem_server(), "forwarding",
                               metrics=registry)
        run.run(4e9, duration_sec=_DURATION)
        section = explain_from_registry(registry)
        assert section["span_paths"] > 0
        assert section["top_frames"]
        assert section["latency"]["packets"] > 0
        json.dumps(section)

    def test_bench_doc_with_explain_validates(self):
        # A minimal doc with the new optional section passes the schema.
        doc = {
            "schema": "repro.bench/2", "name": "x", "created_unix": 0.0,
            "wall_time_sec": 0.1, "wall_clock_s": 0.1,
            "events_per_sec": 10.0, "status": "passed", "tests": [],
            "scalars": {}, "metrics": {},
            "explain": {"latency": None, "top_frames": [],
                        "span_paths": 0},
        }
        assert validate_bench(doc) == []
        doc["explain"] = "nope"
        assert validate_bench(doc)


class TestCli:
    def test_explain_smoke(self, capsys):
        code = main(["obs", "explain", "forwarding", "--size", "64",
                     "--duration-ms", "0.4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bottleneck=cpu" in out
        assert "agrees with the analytic model" in out

    def test_explain_usage_error(self, capsys):
        assert main(["obs", "explain"]) == 2

    def test_explain_reads_bench_json(self, tmp_path, capsys):
        doc = {
            "schema": "repro.bench/2", "name": "demo", "created_unix": 0.0,
            "wall_time_sec": 0.1, "wall_clock_s": 0.1,
            "events_per_sec": 10.0, "status": "passed", "tests": [],
            "scalars": {}, "metrics": {},
            "explain": {
                "latency": {
                    "packets": 4, "mean_end_to_end_usec": 1.0,
                    "stages_usec": {"element_service": 1.0},
                    "stage_fractions": {"element_service": 1.0},
                    "max_residual_fraction": 0.0,
                },
                "top_frames": [
                    {"element": "src", "self": 10.0, "fraction": 1.0}],
                "span_paths": 1,
            },
        }
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(doc))
        assert main(["obs", "explain", str(path)]) == 0
        out = capsys.readouterr().out
        assert "src" in out and "element_service" in out

    def test_explain_rejects_doc_without_section(self, tmp_path, capsys):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps({"name": "old"}))
        assert main(["obs", "explain", str(path)]) == 2
