"""Tests for the batching-timeout driver feature (Sec. 4.2 future work)."""

import pytest

from repro.core.latency import (
    server_latency_usec,
    server_latency_with_timeout_usec,
)
from repro.errors import ConfigurationError
from repro.perfmodel.batching import effective_kn_with_timeout


class TestBatchingTimeout:
    def test_low_rate_latency_capped_by_timeout(self):
        # At 10 kpps, waiting for 15 more packets would take 1.5 ms; a
        # 100 us timeout caps the batch wait.
        without = server_latency_usec("input", kn=16, packet_rate_pps=None)
        with_timeout = server_latency_with_timeout_usec(
            "input", kn=16, packet_rate_pps=1e4, timeout_sec=100e-6)
        assert with_timeout < without + 100
        # dma (10.24) + capped wait (12.8 -- the nominal is already lower
        # than the timeout here) sanity: result bounded by timeout + fixed.
        assert with_timeout <= 10.24 + 100 + 0.8 + 1e-9

    def test_high_rate_unaffected(self):
        # At 10 Mpps the batch fills in 1.5 us; the timeout never fires.
        fast = server_latency_with_timeout_usec(
            "input", kn=16, packet_rate_pps=1e7, timeout_sec=1e-3)
        assert fast == pytest.approx(10.24 + 1.5 + 0.8, abs=0.01)

    def test_tighter_timeout_lower_latency(self):
        loose = server_latency_with_timeout_usec(
            "input", kn=16, packet_rate_pps=1e5, timeout_sec=1e-3)
        tight = server_latency_with_timeout_usec(
            "input", kn=16, packet_rate_pps=1e5, timeout_sec=10e-6)
        assert tight < loose

    def test_effective_batch_size_interacts(self):
        # The timeout trades latency against batching efficiency: at low
        # rates the effective kn collapses toward 1.
        assert effective_kn_with_timeout(16, 1e3, 1e-4) == pytest.approx(1.0)
        assert effective_kn_with_timeout(16, 1e8, 1e-4) == 16.0

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            server_latency_with_timeout_usec("input", 16, 1e6, 0)
        with pytest.raises(ConfigurationError):
            server_latency_with_timeout_usec("input", 16, 0, 1e-3)
        with pytest.raises(ConfigurationError):
            server_latency_with_timeout_usec("nope", 16, 1e6, 1e-3)
