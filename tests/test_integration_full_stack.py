"""Full-stack integration: every subsystem in one scenario.

Builds a RIB, churns it, compiles FIBs through the control plane, writes a
trace to a real pcap file, routes the loaded trace through the Click-built
cluster (functional path), and cross-checks the DES view of the same
traffic -- the whole library working together.
"""

import pytest

from repro.core import RouteBricksRouter
from repro.core.click_node import ClickCluster
from repro.core.control import ClusterManager
from repro.net import IPv4Address, Packet
from repro.workloads.churn import ChurnGenerator
from repro.workloads.pcapio import load_trace, save_trace


@pytest.fixture
def manager():
    m = ClusterManager()
    for port in range(4):
        m.add_node(external_port=port)
        m.announce("10.%d.0.0/16" % port, port)
    m.push_fibs()
    return m


class TestFullStack:
    def test_control_plane_to_click_dataplane(self, manager, tmp_path):
        # 1. Churn the master RIB a little, re-announce, re-push.
        fib = manager.build_fib()
        churn = ChurnGenerator(fib, num_ports=4, withdraw_fraction=0.0,
                               reannounce_fraction=0.0, seed=1)
        for update in churn.updates(20):
            manager.announce(update.prefix, update.route.port)
        manager.push_fibs()
        assert manager.stale_nodes() == []

        # 2. Build the Click cluster from node 0's FIB.
        cluster = ClickCluster(4, manager.fib_of(0), seed=2)

        # 3. Write traffic to disk and load it back.
        path = str(tmp_path / "full.pcap")
        pairs = []
        for i in range(40):
            packet = Packet.udp("172.16.0.%d" % (i % 250),
                                "10.%d.9.9" % (i % 4), length=200,
                                src_port=i)
            pairs.append((i * 1e-5, packet))
        save_trace(path, pairs)

        # 4. Route the loaded trace through the functional cluster.
        loaded = 0
        for _, packet in load_trace(path):
            assert cluster.inject(0, packet)
            loaded += 1
        delivered = cluster.run(rounds=12)
        assert delivered == loaded
        for node in range(4):
            assert len(cluster.delivered[node]) == 10

        # 5. The DES view of the same matrix agrees on deliverability.
        router = RouteBricksRouter(seed=3)
        events = []
        for index, (time, packet) in enumerate(pairs):
            events.append((time, 0, index % 4, packet.copy()))
        report = router.simulate(events)
        assert report.delivered_packets == len(events)

    def test_membership_change_reaches_dataplane(self, manager):
        # Add a node and prefix; the new FIB routes to the new node.
        manager.add_node(external_port=4)
        manager.announce("10.4.0.0/16", 4)
        manager.push_fibs()
        fib = manager.fib_of(0)
        route = fib.lookup(IPv4Address("10.4.1.1"))
        assert route is not None and route.port == 4
