"""Parallel-runtime telemetry and the Chrome-trace timeline exporter.

Pins the PR 9 acceptance contract:

* the runner's epoch/barrier instrumentation charges ``parallel_*``
  metrics whose per-partition sums reconcile with the report;
* :func:`repro.obs.timeline.chrome_trace` emits a valid Chrome trace
  event document whose wall-track compute spans sum, per partition, to
  that partition's ``busy_seconds`` within 1%;
* cross-partition-stitched ``PathTrace`` hop sequences are identical to
  the single-heap run at workers=1/2/4 on both backends;
* ``TRACE_*.json`` exports are deterministic across two seeded runs
  (everything on the simulation clock byte-identical; the wall-clock
  track varies only in its measured ``ts``/``dur`` values).
"""

import json

import pytest

from repro.core.router import RouteBricksRouter
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import TRACE_SCHEMA, validate_trace
from repro.obs.timeline import (
    PID_PACKETS,
    PID_PROFILE,
    PID_SIM,
    PID_WALL,
    chrome_trace,
    wall_compute_seconds,
    write_trace_json,
)
from repro.parallel import simulate_parallel
from repro.workloads import WorkloadSpec
from repro.workloads.matrices import uniform_matrix

NODES = 4
SEED = 11
UNTIL = 6e-4


def _router(nodes=NODES):
    return RouteBricksRouter(num_nodes=nodes, seed=SEED)


def _workload(router, load=0.3):
    return WorkloadSpec.fixed(64).with_matrix(
        uniform_matrix(router.num_nodes, router.port_rate_bps * load))


def _run(workers, backend="inline", sample_every=4, profile=True):
    router = _router()
    registry = MetricsRegistry(enabled=True,
                               trace_sample_every=sample_every,
                               profile=profile)
    report = simulate_parallel(router, _workload(router), until=UNTIL,
                               workers=workers, backend=backend,
                               metrics=registry)
    return report, registry


class TestRunnerTelemetry:
    def test_report_carries_epoch_barrier_fields(self):
        report, _ = _run(2)
        assert len(report.barrier_wait_seconds) == 2
        assert all(w >= 0.0 for w in report.barrier_wait_seconds)
        assert 0.0 < report.lookahead_efficiency <= 1.0
        assert report.load_imbalance >= 1.0

    def test_parallel_metrics_reconcile_with_report(self):
        report, registry = _run(2)
        snap = registry.snapshot()
        busy_tl = snap["timelines"]["parallel_epoch_busy_seconds"]
        wait_tl = snap["timelines"]["parallel_epoch_barrier_seconds"]
        for pid in range(2):
            label = "{partition=%d,workers=2}" % pid
            busy_sum = busy_tl[label]["totals"]["sum"]
            wait_sum = wait_tl[label]["totals"]["sum"]
            assert busy_sum == pytest.approx(
                report.partition_busy_seconds[pid], rel=1e-9)
            assert wait_sum == pytest.approx(
                report.barrier_wait_seconds[pid], rel=1e-9)
            gauges = snap["gauges"]
            assert gauges["parallel_busy_seconds"][label] == \
                pytest.approx(busy_sum, rel=1e-9)
            assert gauges["parallel_barrier_wait_seconds"][label] == \
                pytest.approx(wait_sum, rel=1e-9)
        assert snap["gauges"]["parallel_lookahead_efficiency"][
            "{workers=2}"] == pytest.approx(report.lookahead_efficiency)
        assert snap["gauges"]["parallel_imbalance"]["{workers=2}"] == \
            pytest.approx(report.load_imbalance)

    def test_transit_volumes_recorded(self):
        _, registry = _run(2)
        snap = registry.snapshot()
        records = snap["timelines"]["parallel_transit_records"]
        volumes = snap["timelines"]["parallel_transit_bytes"]
        assert records and volumes
        total_records = sum(s["totals"]["sum"] for s in records.values())
        total_bytes = sum(s["totals"]["sum"] for s in volumes.values())
        assert total_records > 0
        # 64 B frames: byte volume is frame-count * frame size.
        assert total_bytes == pytest.approx(total_records * 64)

    def test_single_heap_run_charges_no_parallel_metrics(self):
        _, registry = _run(1)
        assert not any(name.startswith("parallel_")
                       for name in registry.names())


class TestChromeTraceExport:
    def test_export_is_schema_valid(self):
        _, registry = _run(2)
        doc = chrome_trace("rb4", registry.snapshot())
        assert validate_trace(doc) == []
        assert doc["metadata"]["schema"] == TRACE_SCHEMA
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {PID_SIM, PID_WALL, PID_PROFILE, PID_PACKETS}

    def test_wall_compute_spans_sum_to_busy_seconds(self):
        # The acceptance criterion: per partition, the wall track's
        # epoch/barrier spans reconstruct busy_seconds within 1%.
        report, registry = _run(2)
        doc = chrome_trace("rb4", registry.snapshot())
        sums = wall_compute_seconds(doc)
        for pid, busy in enumerate(report.partition_busy_seconds):
            tid = 2 * 256 + pid
            assert sums[tid] == pytest.approx(busy, rel=0.01)
        barrier = {}
        for event in doc["traceEvents"]:
            if event["pid"] == PID_WALL and event.get("name") == "barrier":
                tid = event["tid"]
                barrier[tid] = barrier.get(tid, 0.0) + event["dur"] / 1e6
        for pid, wait in enumerate(report.barrier_wait_seconds):
            assert barrier.get(2 * 256 + pid, 0.0) == \
                pytest.approx(wait, rel=0.01, abs=1e-9)

    def test_export_is_pure_function_of_snapshot(self):
        _, registry = _run(2)
        snap = json.loads(json.dumps(registry.snapshot()))
        first = json.dumps(chrome_trace("rb4", snap), sort_keys=True)
        second = json.dumps(chrome_trace("rb4", snap), sort_keys=True)
        assert first == second

    def test_trace_json_deterministic_across_two_runs(self, tmp_path):
        # Two fresh seeded runs: everything on the simulation clock is
        # byte-identical (packet ids are rebased by the exporter); the
        # wall-clock track keeps its span structure but re-measures
        # ts/dur.
        paths = []
        for run in ("a", "b"):
            _, registry = _run(2)
            doc = chrome_trace("rb4", registry.snapshot())
            paths.append(write_trace_json(doc, tmp_path / run))
        docs = [json.load(open(p)) for p in paths]

        def split(doc):
            sim = [e for e in doc["traceEvents"] if e["pid"] != PID_WALL]
            wall = [e for e in doc["traceEvents"] if e["pid"] == PID_WALL]
            return sim, wall

        sim_a, wall_a = split(docs[0])
        sim_b, wall_b = split(docs[1])
        assert json.dumps(sim_a, sort_keys=True) == \
            json.dumps(sim_b, sort_keys=True)
        assert docs[0]["metadata"] == docs[1]["metadata"]
        shape = [(e["ph"], e["tid"], e["name"], e["args"].get("epochs"))
                 for e in wall_a if e["ph"] == "X"]
        assert shape == [(e["ph"], e["tid"], e["name"],
                          e["args"].get("epochs"))
                         for e in wall_b if e["ph"] == "X"]

    def test_empty_snapshot_exports_empty_but_valid(self):
        doc = chrome_trace("empty", MetricsRegistry(enabled=True).snapshot())
        assert doc["traceEvents"] == []
        assert validate_trace(doc) == []

    def test_validate_trace_rejects_malformed(self):
        assert validate_trace([]) == ["document is not a JSON object"]
        bad = {"displayTimeUnit": "ms",
               "metadata": {"schema": TRACE_SCHEMA},
               "traceEvents": [
                   {"ph": "Z", "pid": 1, "name": "x"},
                   {"ph": "X", "pid": 1, "tid": 0, "name": "x",
                    "ts": -1.0, "dur": 1.0},
                   {"ph": "X", "pid": 1, "tid": "zero", "name": "x",
                    "ts": 0.0, "dur": -2.0},
                   {"ph": "M", "pid": 1, "name": "process_name",
                    "args": {}},
               ]}
        problems = validate_trace(bad)
        assert any("ph" in p for p in problems)
        assert any(".ts" in p for p in problems)
        assert any(".tid" in p for p in problems)
        assert any(".dur" in p for p in problems)
        assert any("args.name" in p for p in problems)
        assert validate_trace({"traceEvents": []}) == [
            "missing 'metadata' object",
            "displayTimeUnit must be 'ms' or 'ns'",
        ]


class TestTraceStitching:
    """Satellite: stitched cross-partition PathTraces == single-heap."""

    def _hops_by_packet(self, registry):
        hops = {}
        ids = sorted(t.packet_id for t in registry.tracer.traces)
        base = ids[0] if ids else 0
        for trace in registry.tracer.traces:
            hops[trace.packet_id - base] = [
                (h.site, h.time, h.note) for h in trace.hops]
        return hops

    @pytest.mark.parametrize("backend", ["inline", "process"])
    def test_stitched_hops_identical_to_single_heap(self, backend):
        router = _router()
        reference = MetricsRegistry(enabled=True, trace_sample_every=4)
        router.simulate(_workload(router), until=UNTIL, metrics=reference)
        expected = self._hops_by_packet(reference)
        assert expected, "reference run sampled no traces"
        # ingress -> tx -> remote output -> egress: every journey spans
        # two nodes, so a partitioned run must stitch across CrossLinks.
        assert any(len(hops) >= 4 for hops in expected.values())
        for workers in (1, 2, 4):
            _, registry = _run(workers, backend=backend, profile=False)
            assert self._hops_by_packet(registry) == expected, \
                "workers=%d (%s) stitched traces diverged" % (workers,
                                                              backend)

    def test_traces_cross_partition_boundaries(self):
        # The stitched journeys must actually span partitions: with 2
        # partitions of RB4 ({0,1} | {2,3}), some sampled packet visits
        # nodes on both sides.
        _, registry = _run(2, sample_every=2, profile=False)
        crossed = 0
        for trace in registry.tracer.traces:
            nodes = {int(h.site.split(".")[0][4:])
                     for h in trace.hops if h.site.startswith("node")}
            if nodes & {0, 1} and nodes & {2, 3}:
                crossed += 1
        assert crossed > 0


class TestPacketTrack:
    def test_packet_spans_use_stage_names(self):
        _, registry = _run(2, sample_every=2)
        doc = chrome_trace("rb4", registry.snapshot())
        stages = {e["name"] for e in doc["traceEvents"]
                  if e["pid"] == PID_PACKETS and e["ph"] == "X"}
        assert "vlb_hop_transit" in stages or "egress_transit" in stages
