"""Tests for the single-server performance model (Tables 1-3, Figs 6-10)."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.hw.presets import NEHALEM, NEHALEM_NEXT_GEN, XEON_SHARED_BUS
from repro.perfmodel import (
    SCENARIOS,
    ServerConfig,
    batching_rate_bps,
    batching_sweep,
    bounds_for,
    max_loss_free_rate,
    per_packet_loads,
    project_rates,
    projected_abilene_forwarding_bps,
    scenario_rate_gbps,
)
from repro.perfmodel.batching import (
    batching_added_latency_sec,
    effective_kn_with_timeout,
)
from repro.perfmodel.bounds import stream_benchmark_bps
from repro.perfmodel.scenarios import fig7_configurations
from repro.workloads import WorkloadSpec


class TestThroughputSolver:
    @pytest.mark.parametrize("app,paper_gbps", [
        ("forwarding", 9.77), ("routing", 6.35), ("ipsec", 1.40)])
    def test_fig8_64b_rates(self, app, paper_gbps):
        result = max_loss_free_rate(
            WorkloadSpec.fixed(64, app=cal.APPLICATIONS[app]))
        assert result.rate_gbps == pytest.approx(paper_gbps, rel=0.01)
        assert result.bottleneck == "cpu"

    def test_fig8_abilene_nic_limited(self):
        for app in ("forwarding", "routing"):
            result = max_loss_free_rate(WorkloadSpec.fixed(
                cal.ABILENE_MEAN_PACKET_BYTES, app=cal.APPLICATIONS[app]))
            assert result.rate_gbps == pytest.approx(24.6, rel=0.01)
            assert result.bottleneck == "nic"

    def test_fig8_abilene_ipsec(self):
        result = max_loss_free_rate(
            WorkloadSpec.fixed(cal.ABILENE_MEAN_PACKET_BYTES, app=cal.IPSEC))
        assert result.rate_gbps == pytest.approx(4.45, rel=0.01)
        assert result.bottleneck == "cpu"

    def test_large_packets_nic_limited(self):
        result = max_loss_free_rate(
            WorkloadSpec.fixed(1024, app=cal.MINIMAL_FORWARDING))
        assert result.bottleneck == "nic"
        assert result.rate_gbps == pytest.approx(24.6, rel=0.01)

    def test_rate_monotone_in_packet_size(self):
        rates = [max_loss_free_rate(
            WorkloadSpec.fixed(p, app=cal.MINIMAL_FORWARDING)).rate_bps
                 for p in (64, 128, 256, 512, 1024)]
        assert rates == sorted(rates)

    def test_pps_monotone_decreasing_in_packet_size(self):
        pps = [max_loss_free_rate(
            WorkloadSpec.fixed(p, app=cal.MINIMAL_FORWARDING)).rate_pps
               for p in (64, 128, 256, 512, 1024)]
        assert pps == sorted(pps, reverse=True)

    def test_unlimited_nic_exceeds_limited(self):
        spec_1024 = WorkloadSpec.fixed(1024, app=cal.MINIMAL_FORWARDING)
        limited = max_loss_free_rate(spec_1024)
        free = max_loss_free_rate(spec_1024, nic_limited=False)
        assert free.rate_bps > limited.rate_bps

    def test_invalid_packet_size(self):
        with pytest.raises(ConfigurationError):
            max_loss_free_rate(
                WorkloadSpec.fixed(0, app=cal.MINIMAL_FORWARDING))

    def test_utilization_at_bottleneck_is_one(self):
        result = max_loss_free_rate(
            WorkloadSpec.fixed(64, app=cal.MINIMAL_FORWARDING))
        utils = result.utilization_at(result.rate_pps)
        assert utils[result.bottleneck] == pytest.approx(1.0)
        assert all(u <= 1.0 + 1e-9 for u in utils.values())


class TestBatching:
    def test_table1(self):
        rows = batching_sweep()
        measured = {(r["kp"], r["kn"]): r["rate_gbps"] for r in rows}
        assert measured[(1, 1)] == pytest.approx(1.46, rel=0.01)
        assert measured[(32, 1)] == pytest.approx(4.97, rel=0.01)
        assert measured[(32, 16)] == pytest.approx(9.77, rel=0.01)

    def test_rate_monotone_in_batch_sizes(self):
        assert batching_rate_bps(1, 1) < batching_rate_bps(32, 1) \
            < batching_rate_bps(32, 16)

    def test_kn_capped_by_pcie(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(kn=17)

    def test_batching_latency(self):
        # At 1 Mpps, waiting for 15 more packets costs 15 us.
        assert batching_added_latency_sec(16, 1e6) == pytest.approx(15e-6)
        assert batching_added_latency_sec(1, 1e6) == 0.0

    def test_effective_kn_with_timeout(self):
        # Low rate: the timeout flushes nearly-empty batches.
        assert effective_kn_with_timeout(16, 1000, 1e-3) == pytest.approx(1.0)
        # High rate: full batches before the timeout.
        assert effective_kn_with_timeout(16, 1e7, 1e-3) == 16.0

    def test_bad_args(self):
        with pytest.raises(ValueError):
            batching_added_latency_sec(0, 1e6)
        with pytest.raises(ValueError):
            effective_kn_with_timeout(16, 1e6, 0)


class TestScenarios:
    def test_fig6_paper_anchors(self):
        assert scenario_rate_gbps("parallel") == pytest.approx(1.7, abs=0.05)
        assert scenario_rate_gbps("pipeline") == pytest.approx(1.2, abs=0.05)
        assert scenario_rate_gbps("pipeline_cross_cache") == pytest.approx(
            0.6, abs=0.05)
        assert scenario_rate_gbps("overlap") == pytest.approx(0.7, abs=0.05)

    def test_parallel_beats_pipeline(self):
        assert scenario_rate_gbps("parallel") > scenario_rate_gbps("pipeline")
        assert scenario_rate_gbps("pipeline") > scenario_rate_gbps(
            "pipeline_cross_cache")

    def test_multi_queue_fixes_split(self):
        # Fig 6: (d) achieves more than 3x the rate of (c).
        ratio = (scenario_rate_gbps("split_multi_queue")
                 / scenario_rate_gbps("split"))
        assert ratio > 3.0

    def test_multi_queue_fixes_overlap(self):
        assert scenario_rate_gbps("overlap_multi_queue") == pytest.approx(
            scenario_rate_gbps("parallel"))

    def test_rule_flags(self):
        assert SCENARIOS["pipeline"].violates_one_core_per_packet()
        assert not SCENARIOS["parallel"].violates_one_core_per_packet()
        assert SCENARIOS["overlap"].violates_one_core_per_queue()

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario_rate_gbps("bogus")


class TestFig7:
    def test_ordering(self):
        rows = fig7_configurations()
        rates = [row["rate_mpps"] for row in rows]
        assert rates == sorted(rates)

    def test_xeon_gap(self):
        rows = {r["label"]: r for r in fig7_configurations()}
        final = rows["nehalem/multi-queue/batching"]["rate_mpps"]
        xeon = rows["xeon/single-queue/no-batching"]["rate_mpps"]
        # Paper: 11x improvement over the shared-bus Xeon.
        assert 9 < final / xeon < 14

    def test_unmodified_nehalem_gap(self):
        rows = {r["label"]: r for r in fig7_configurations()}
        final = rows["nehalem/multi-queue/batching"]["rate_mpps"]
        base = rows["nehalem/single-queue/no-batching"]["rate_mpps"]
        # Paper: 6.7x improvement from multi-queue + batching.
        assert 5.5 < final / base < 8.5

    def test_nehalem_beats_xeon_unmodified(self):
        rows = {r["label"]: r for r in fig7_configurations()}
        ratio = (rows["nehalem/single-queue/no-batching"]["rate_mpps"]
                 / rows["xeon/single-queue/no-batching"]["rate_mpps"])
        # Paper: the new architecture alone is a 2-3x improvement.
        assert 1.5 < ratio < 3.5


class TestProjections:
    def test_next_gen_rates(self):
        results = project_rates()
        assert results["forwarding"].rate_gbps == pytest.approx(38.8, rel=0.05)
        assert results["routing"].rate_gbps == pytest.approx(19.9, rel=0.05)
        assert results["ipsec"].rate_gbps == pytest.approx(5.8, rel=0.05)

    def test_routing_turns_memory_bound(self):
        # The paper's key scaling insight: 4x CPU but 2x memory makes the
        # routing workload memory-bound on the next-gen server.
        results = project_rates()
        assert results["routing"].bottleneck == "memory"
        assert results["forwarding"].bottleneck == "cpu"

    def test_abilene_what_if(self):
        rate_gbps = projected_abilene_forwarding_bps() / 1e9
        # Paper estimates ~70 Gbps; we land in the same regime.
        assert 60 < rate_gbps < 90

    def test_what_if_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            projected_abilene_forwarding_bps(io_nominal_fraction=0)


class TestBounds:
    def test_table2_values(self):
        bounds = bounds_for(NEHALEM)
        assert bounds["memory"].nominal == pytest.approx(410e9)
        assert bounds["memory"].empirical == pytest.approx(262e9)
        assert bounds["io"].empirical == pytest.approx(117e9)
        assert bounds["pcie"].empirical == pytest.approx(50.8e9)

    def test_per_packet_bound_scales_inversely(self):
        bound = bounds_for(NEHALEM)["memory"]
        assert bound.per_packet_bound(2e6) == pytest.approx(
            bound.per_packet_bound(1e6) / 2)

    def test_xeon_has_fsb_bound(self):
        assert "fsb" in bounds_for(XEON_SHARED_BUS)

    def test_stream_benchmark(self):
        measured = stream_benchmark_bps(NEHALEM, array_mib=8,
                                        iterations=10_000)
        assert measured == pytest.approx(262e9)

    def test_bound_rejects_bad_rate(self):
        bound = bounds_for(NEHALEM)["cpu"]
        with pytest.raises(ValueError):
            bound.per_packet_bound(0)


class TestLoads:
    def test_loads_positive(self):
        loads = per_packet_loads(cal.IP_ROUTING, 64)
        assert loads.cpu_cycles > 0
        assert loads.mem_bytes > 0
        assert loads.io_bytes > 0

    def test_single_queue_costs_more(self):
        multi = per_packet_loads(cal.MINIMAL_FORWARDING, 64,
                                 ServerConfig(multi_queue=True))
        single = per_packet_loads(cal.MINIMAL_FORWARDING, 64,
                                  ServerConfig(multi_queue=False))
        assert single.cpu_cycles > multi.cpu_cycles

    def test_xeon_cpi_inflation(self):
        plain = per_packet_loads(cal.MINIMAL_FORWARDING, 64, spec=NEHALEM)
        xeon = per_packet_loads(cal.MINIMAL_FORWARDING, 64,
                                spec=XEON_SHARED_BUS)
        assert xeon.cpu_cycles == pytest.approx(
            plain.cpu_cycles * cal.XEON_CPI_FACTOR)

    def test_scaled(self):
        loads = per_packet_loads(cal.MINIMAL_FORWARDING, 64)
        doubled = loads.scaled(2)
        assert doubled.cpu_cycles == pytest.approx(2 * loads.cpu_cycles)

    def test_next_gen_spec_has_higher_cpu_limit(self):
        spec_64 = WorkloadSpec.fixed(64, app=cal.MINIMAL_FORWARDING)
        small = max_loss_free_rate(spec_64, nic_limited=False)
        big = max_loss_free_rate(spec_64, spec=NEHALEM_NEXT_GEN,
                                 nic_limited=False)
        assert big.rate_bps > 3 * small.rate_bps
