"""Live control-plane churn: schedules, the DES driver, end-to-end runs."""

import math

import pytest

from repro.cli import main
from repro.control import (ChurnSchedule, TimedUpdate, announce_rib,
                           build_cluster, probe_addresses, run_churn,
                           verify_fibs)
from repro.errors import ConfigurationError
from repro.routing import generate_prefixes


class TestSchedule:
    def test_measured_rate_shape(self):
        installed = list(generate_prefixes(100, seed=1))
        schedule = ChurnSchedule.measured_rate(
            installed, rate_per_sec=1e4, duration_sec=0.1, seed=3)
        assert len(schedule) > 0
        times = [u.time for u in schedule]
        assert times == sorted(times)
        assert times[-1] < 0.1
        # Poisson at 1e4/s over 0.1 s: ~1000 updates, loosely.
        assert 700 < len(schedule) < 1300

    def test_deterministic_per_seed(self):
        installed = list(generate_prefixes(50, seed=1))
        make = lambda: ChurnSchedule.measured_rate(  # noqa: E731
            installed, rate_per_sec=1e4, duration_sec=0.05, seed=9)
        assert list(make()) == list(make())

    def test_withdrawals_name_installed_prefixes(self):
        installed = list(generate_prefixes(50, seed=1))
        schedule = ChurnSchedule.measured_rate(
            installed, rate_per_sec=2e4, duration_sec=0.05,
            withdraw_fraction=0.5, seed=4)
        live = set(installed)
        withdrawals = 0
        for update in schedule:
            if update.is_withdrawal:
                assert update.prefix in live
                live.discard(update.prefix)
                withdrawals += 1
            else:
                live.add(update.prefix)
        assert withdrawals > 0

    def test_bursts_shape(self):
        installed = list(generate_prefixes(20, seed=1))
        schedule = ChurnSchedule.bursts(
            installed, burst_updates=10, interval_sec=1e-3, bursts=3)
        assert len(schedule) == 30
        assert len({u.time for u in schedule}) == 3

    def test_rejects_unordered(self):
        prefix = next(iter(generate_prefixes(1, seed=1)))
        with pytest.raises(ConfigurationError):
            ChurnSchedule([TimedUpdate(1.0, prefix, 0),
                           TimedUpdate(0.5, prefix, None)])

    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigurationError):
            ChurnSchedule.measured_rate(
                [], rate_per_sec=1e3, duration_sec=0.01,
                withdraw_fraction=0.7, reannounce_fraction=0.7)


class TestRunnerPieces:
    def test_announce_rib_round_robins_ports(self):
        _, manager = build_cluster(4)
        announce_rib(manager, 40, seed=5)
        assert len(manager.rib) == 40
        assert set(manager.rib.values()) == {0, 1, 2, 3}

    def test_verify_fibs_catches_a_stale_table(self):
        _, manager = build_cluster(4)
        announce_rib(manager, 50, seed=5)
        manager.push_fibs()
        probes = probe_addresses(manager, 64, seed=6)
        assert verify_fibs(manager, probes)
        # Sabotage one node's table behind the manager's back.
        victim = next(iter(manager.rib))
        manager.fib_of(2).remove_route(victim)
        assert not verify_fibs(
            manager, [victim.network.value])


class TestRunChurn:
    def test_end_to_end(self):
        report = run_churn(num_nodes=4, routes=1500,
                           update_rate_per_sec=1e5, duration_sec=5e-4,
                           load=0.05, seed=2)
        assert report.consistent
        assert report.updates_applied > 0
        assert report.rebuilds == 0
        assert report.unconverged == 0
        assert report.fib_ops == report.updates_applied * 4
        assert report.forwarding.delivered_packets > 0
        assert not math.isnan(report.final_convergence_sec)
        assert 0 < report.mean_convergence_sec <= 5e-4

    def test_deterministic_replay(self):
        kwargs = dict(num_nodes=4, routes=1000,
                      update_rate_per_sec=1e5, duration_sec=5e-4,
                      load=0.05, seed=13)
        assert run_churn(**kwargs).to_dict() == run_churn(**kwargs).to_dict()

    def test_misses_are_counted_not_delivered(self):
        # hit_fraction 0 makes nearly every destination unroutable
        # (random addresses rarely land in 1000 prefixes).
        report = run_churn(num_nodes=4, routes=1000,
                           update_rate_per_sec=1e5, duration_sec=5e-4,
                           load=0.05, hit_fraction=0.0, seed=2)
        fwd = report.forwarding
        assert fwd.fib_miss_packets > 0.9 * fwd.offered_packets
        assert fwd.delivered_packets + fwd.fib_miss_packets \
            <= fwd.offered_packets

    def test_burst_mode(self):
        report = run_churn(num_nodes=4, routes=1000,
                           burst=(25, 2e-4, 2), duration_sec=5e-4,
                           load=0.05, seed=2)
        assert report.updates_offered == 50
        assert report.consistent

    def test_faults_and_churn_in_one_run(self):
        from repro.faults.schedule import FaultSchedule

        faults = (FaultSchedule()
                  .crash_node(at=2e-4, node=3))
        report = run_churn(num_nodes=4, routes=1000,
                           update_rate_per_sec=1e5, duration_sec=5e-4,
                           load=0.05, seed=2, faults=faults)
        # The crash produced a control-plane convergence record and the
        # surviving FIBs still match the reference (which excludes the
        # dead node's routes).
        assert len(report.forwarding.convergence) == 1
        assert report.consistent

    def test_quiet_schedule_runs_clean(self):
        report = run_churn(num_nodes=4, routes=1000, duration_sec=5e-4,
                           load=0.05, seed=2,
                           schedule=ChurnSchedule([]))
        assert report.updates_offered == 0
        assert report.sync_ticks == 0
        assert report.consistent

    def test_metrics_recorded_when_enabled(self):
        from repro.obs.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            run_churn(num_nodes=4, routes=1000,
                      update_rate_per_sec=1e5, duration_sec=5e-4,
                      load=0.05, seed=2)
        snap = registry.snapshot()
        assert "fib_updates_applied" in snap["counters"]
        assert "fib_update_seconds" in snap["counters"]
        assert "convergence_seconds" in snap["gauges"]
        assert "convergence_usec" in snap["histograms"]
        assert "cluster_latency_usec" in snap["timelines"]


class TestCli:
    def test_control_run_churn_smoke(self, capsys):
        assert main(["control", "run", "rb4", "--churn",
                     "--routes", "800", "--duration-ms", "0.5",
                     "--load", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "updates applied" in out
        assert "consistency: OK" in out

    def test_control_churn_sweep_smoke(self, capsys):
        assert main(["control", "churn", "rb4", "--routes", "600",
                     "--duration-ms", "0.5", "--load", "0.05",
                     "--rates", "5e4,2e5"]) == 0
        out = capsys.readouterr().out
        assert "Convergence vs update rate" in out

    def test_control_bad_topology(self, capsys):
        assert main(["control", "run", "mesh9"]) == 2
