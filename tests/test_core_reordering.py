"""Tests for the reordering metric (Sec. 6.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ReorderingMeter
from repro.net import FiveTuple, IPv4Address, Packet


def _flow(i=0):
    return FiveTuple(IPv4Address(1 + i), IPv4Address(2), 6, 10, 80)


class TestReorderedSequences:
    def test_paper_example(self):
        # <p1, p4, p2, p3, p5>: one reordered sequence (<p2, p3>).
        assert ReorderingMeter.reordered_sequences([1, 4, 2, 3, 5]) == 1

    def test_in_order_counts_zero(self):
        assert ReorderingMeter.reordered_sequences([1, 2, 3, 4, 5]) == 0

    def test_two_separate_displacements(self):
        # p2 displaced, then later p5 displaced: two sequences.
        assert ReorderingMeter.reordered_sequences([1, 3, 2, 4, 6, 5]) == 2

    def test_fully_reversed(self):
        assert ReorderingMeter.reordered_sequences([5, 4, 3, 2, 1]) == 1

    def test_empty_and_single(self):
        assert ReorderingMeter.reordered_sequences([]) == 0
        assert ReorderingMeter.reordered_sequences([1]) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                    max_size=50, unique=True))
    def test_sorted_input_never_reordered(self, seqs):
        assert ReorderingMeter.reordered_sequences(sorted(seqs)) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.permutations(list(range(1, 12))))
    def test_count_bounded_by_displacements(self, seqs):
        count = ReorderingMeter.reordered_sequences(list(seqs))
        displaced = sum(1 for i, s in enumerate(seqs)
                        if s <= max(seqs[:i], default=0))
        assert 0 <= count <= displaced


class TestMeter:
    def test_observe_packets(self):
        meter = ReorderingMeter()
        for seq in (1, 3, 2):
            packet = Packet.udp("1.0.0.1", "2.0.0.2", src_port=5)
            packet.flow_seq = seq
            meter.observe(packet)
        assert meter.packets_observed() == 3
        assert meter.flows_observed() == 1
        assert meter.reordered_fraction() == pytest.approx(1 / 3)

    def test_multiple_flows_aggregate(self):
        meter = ReorderingMeter()
        meter.observe_sequence(_flow(0), [1, 2, 3, 4])     # in order
        meter.observe_sequence(_flow(1), [1, 3, 2, 4])     # one reorder
        assert meter.reordered_fraction() == pytest.approx(1 / 8)

    def test_no_packets(self):
        assert ReorderingMeter().reordered_fraction() == 0.0

    def test_run_fraction_differs_from_packet_fraction(self):
        meter = ReorderingMeter()
        meter.observe_sequence(_flow(), [1, 4, 2, 3, 5])
        # 1 reordered / 5 packets vs 1 reordered / 3 runs.
        assert meter.reordered_fraction() == pytest.approx(0.2)
        assert meter.reordered_run_fraction() == pytest.approx(1 / 3)
