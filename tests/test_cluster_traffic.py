"""Tests for matrix-driven cluster traffic generation."""

import pytest

from repro.core import RouteBricksRouter
from repro.errors import ConfigurationError
from repro.workloads import permutation_matrix, uniform_matrix
from repro.workloads.cluster_traffic import matrix_events, offered_packets


class TestMatrixEvents:
    def test_events_sorted_and_within_duration(self):
        matrix = uniform_matrix(4, 1e9)
        events = list(matrix_events(matrix, duration_sec=1e-3, seed=1))
        times = [t for t, _, _, _ in events]
        assert times == sorted(times)
        assert all(t <= 1e-3 for t in times)

    def test_event_count_matches_demand(self):
        matrix = uniform_matrix(4, 2e9)
        events = list(matrix_events(matrix, duration_sec=2e-3, seed=2))
        expected = offered_packets(matrix, 2e-3)
        assert len(events) == pytest.approx(expected, rel=0.15)

    def test_pairs_follow_matrix_support(self):
        matrix = permutation_matrix(4, 1e9)
        events = list(matrix_events(matrix, duration_sec=1e-3, seed=3))
        pairs = {(i, e) for _, i, e, _ in events}
        assert pairs <= {(i, (i + 1) % 4) for i in range(4)}

    def test_flow_seq_monotone_per_flow(self):
        matrix = uniform_matrix(3, 1e9)
        last = {}
        for _, _, _, packet in matrix_events(matrix, duration_sec=1e-3,
                                             seed=4):
            key = packet.five_tuple()
            assert packet.flow_seq == last.get(key, 0) + 1
            last[key] = packet.flow_seq

    def test_deterministic(self):
        matrix = uniform_matrix(3, 1e9)
        a = [(t, i, e) for t, i, e, _ in matrix_events(matrix, 1e-3, seed=5)]
        b = [(t, i, e) for t, i, e, _ in matrix_events(matrix, 1e-3, seed=5)]
        assert a == b

    def test_bad_args(self):
        matrix = uniform_matrix(3, 1e9)
        with pytest.raises(ConfigurationError):
            list(matrix_events(matrix, duration_sec=0))
        with pytest.raises(ConfigurationError):
            list(matrix_events(matrix, 1e-3, packet_bytes=32))


class TestMatrixThroughDES:
    def test_uniform_matrix_all_direct_no_loss(self):
        """An admissible uniform matrix at 60 % load: everything direct,
        nothing dropped -- the cluster's design point."""
        matrix = uniform_matrix(4, 6e9)
        router = RouteBricksRouter(seed=6)
        report = router.simulate(matrix_events(matrix, 1.5e-3, seed=7))
        assert report.delivered_packets == report.offered_packets
        assert report.indirect_fraction < 0.05

    def test_permutation_matrix_fits_direct_links(self):
        """An admissible permutation matrix (demand <= R per pair) fits
        the 10 G direct links of a full mesh: no balancing needed -- the
        interconnect constraint VLB solves is processing, not link rate,
        in this topology."""
        matrix = permutation_matrix(4, 9.5e9)
        router = RouteBricksRouter(seed=8)
        report = router.simulate(matrix_events(matrix, 1.5e-3, seed=9))
        assert report.delivery_ratio > 0.999
        assert report.indirect_fraction < 0.2

    def test_oversubscribed_pair_forces_balancing(self):
        """Demand above one link's rate on a single pair (the paper's
        replay setup): the excess load-balances via intermediates."""
        from repro.workloads import TrafficMatrix
        demands = [[0.0] * 4 for _ in range(4)]
        demands[0][1] = 14e9  # 1.4x the direct link
        matrix = TrafficMatrix(demands)
        router = RouteBricksRouter(seed=8)
        report = router.simulate(matrix_events(matrix, 1.2e-3, seed=9))
        assert report.delivery_ratio > 0.999
        assert report.indirect_fraction > 0.2
