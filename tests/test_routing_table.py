"""Tests for the RoutingTable facade and synthetic RIB generation."""

import pytest

from repro.errors import RoutingError
from repro.net import IPv4Address, Prefix
from repro.routing import Route, RoutingTable, generate_rib
from repro.routing.rib_gen import PREFIX_LENGTH_MIX, random_destinations


class TestRoutingTable:
    def test_add_lookup(self):
        table = RoutingTable()
        route = Route(port=2, next_hop=IPv4Address("10.0.2.1"))
        table.add_route("192.168.0.0/16", route)
        assert table.lookup("192.168.5.5") == route
        assert table.lookup("8.8.8.8") is None

    def test_lookup_or_raise(self):
        table = RoutingTable()
        with pytest.raises(RoutingError):
            table.lookup_or_raise("1.1.1.1")

    def test_remove(self):
        table = RoutingTable()
        table.add_route("1.0.0.0/8", Route(port=0, next_hop=IPv4Address(1)))
        table.remove_route("1.0.0.0/8")
        assert table.lookup("1.2.3.4") is None
        with pytest.raises(RoutingError):
            table.remove_route("1.0.0.0/8")

    def test_default_route(self):
        table = RoutingTable()
        fallthrough = Route(port=9, next_hop=IPv4Address("10.9.9.1"))
        table.add_default(fallthrough)
        assert table.lookup("203.0.113.7") == fallthrough

    def test_trie_engine_agrees(self):
        fast = RoutingTable(engine="dir24_8")
        slow = RoutingTable(engine="trie")
        for prefix, port in [("10.0.0.0/8", 0), ("10.1.0.0/16", 1),
                             ("10.1.2.0/24", 2), ("10.1.2.128/25", 3)]:
            route = Route(port=port, next_hop=IPv4Address(port + 1))
            fast.add_route(prefix, route)
            slow.add_route(prefix, route)
        for probe in ("10.1.2.5", "10.1.2.200", "10.9.9.9", "11.0.0.1"):
            assert fast.lookup(probe) == slow.lookup(probe)

    def test_unknown_engine(self):
        with pytest.raises(RoutingError):
            RoutingTable(engine="cuckoo")

    def test_negative_port_rejected(self):
        with pytest.raises(RoutingError):
            Route(port=-1, next_hop=IPv4Address(0))

    def test_routes_iteration(self):
        table = RoutingTable()
        table.add_route("10.0.0.0/8", Route(port=0, next_hop=IPv4Address(1)))
        assert len(list(table.routes())) == 1


class TestRibGen:
    def test_mix_sums_to_one(self):
        total = sum(share for _, share in PREFIX_LENGTH_MIX)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_generate_small_rib(self):
        table = generate_rib(num_entries=500, num_ports=4, seed=7)
        assert len(table) == 500
        ports = {route.port for _, route in table.routes()}
        assert ports == {0, 1, 2, 3}

    def test_deterministic_for_seed(self):
        a = sorted(str(p) for p, _ in generate_rib(200, seed=3).routes())
        b = sorted(str(p) for p, _ in generate_rib(200, seed=3).routes())
        assert a == b

    def test_random_destinations_hit(self):
        table = generate_rib(num_entries=300, seed=5)
        dests = random_destinations(200, table, seed=9, hit_fraction=1.0)
        hits = sum(1 for d in dests if table.lookup(d) is not None)
        assert hits == 200

    def test_random_destinations_miss_fraction(self):
        table = generate_rib(num_entries=50, seed=5)
        dests = random_destinations(400, table, seed=9, hit_fraction=0.0)
        hits = sum(1 for d in dests if table.lookup(d) is not None)
        # Random addresses rarely hit a 50-entry table.
        assert hits < 40

    def test_prefix_lengths_follow_mix(self):
        table = generate_rib(num_entries=2000, seed=11)
        lengths = [p.length for p, _ in table.routes()]
        share_24 = lengths.count(24) / len(lengths)
        assert 0.40 < share_24 < 0.56

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_rib(num_entries=0)
        with pytest.raises(ValueError):
            generate_rib(num_entries=10, num_ports=0)
        table = generate_rib(num_entries=10)
        with pytest.raises(ValueError):
            random_destinations(5, table, hit_fraction=1.5)
