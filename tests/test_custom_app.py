"""Tests for the custom-application performance API (Sec. 8)."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.perfmodel.custom_app import define_application, predict
from repro.perfmodel.throughput import max_loss_free_rate
from repro.workloads import WorkloadSpec


class TestDefineApplication:
    def test_costs_exceed_forwarding_base(self):
        app = define_application("nat", instructions_per_packet=400,
                                 cycles_per_instruction=1.2)
        base = cal.MINIMAL_FORWARDING
        assert app.cpu_cycles(64) == pytest.approx(
            base.cpu_cycles(64) + 480)

    def test_cycles_direct(self):
        app = define_application("firewall", cycles_per_packet=900)
        assert app.cpu_cycles(64) == pytest.approx(
            cal.MINIMAL_FORWARDING.cpu_cycles(64) + 900)

    def test_per_byte_cost(self):
        dpi = define_application("dpi", cycles_per_packet=500,
                                 cycles_per_byte=4.0)
        small = dpi.cpu_cycles(64)
        large = dpi.cpu_cycles(1500)
        base_growth = (cal.MINIMAL_FORWARDING.cpu_cycles(1500)
                       - cal.MINIMAL_FORWARDING.cpu_cycles(64))
        assert large - small == pytest.approx(base_growth + 4.0 * 1436)

    def test_memory_lines(self):
        app = define_application("flowtable", cycles_per_packet=300,
                                 extra_memory_lines=3)
        assert app.mem_bytes(64) == pytest.approx(
            cal.MINIMAL_FORWARDING.mem_bytes(64) + 192 + 64)

    def test_payload_untouched_saves_memory(self):
        touch = define_application("a", cycles_per_packet=100,
                                   touches_payload=True)
        skip = define_application("b", cycles_per_packet=100,
                                  touches_payload=False)
        assert skip.mem_bytes(1500) < touch.mem_bytes(1500)

    def test_zero_cost_app_equals_forwarding(self):
        app = define_application("noop", cycles_per_packet=0,
                                 touches_payload=False)
        rate_noop = max_loss_free_rate(
            WorkloadSpec.fixed(64, app=app)).rate_bps
        rate_fwd = max_loss_free_rate(
            WorkloadSpec.fixed(64, app=cal.MINIMAL_FORWARDING)).rate_bps
        assert rate_noop == pytest.approx(rate_fwd)

    def test_rejects_ambiguous_spec(self):
        with pytest.raises(ConfigurationError):
            define_application("x", instructions_per_packet=10,
                               cycles_per_packet=10)
        with pytest.raises(ConfigurationError):
            define_application("x")

    def test_rejects_negatives(self):
        with pytest.raises(ConfigurationError):
            define_application("x", cycles_per_packet=-1)
        with pytest.raises(ConfigurationError):
            define_application("x", cycles_per_packet=1, cycles_per_byte=-1)


class TestPredict:
    def test_server_prediction_drops_with_cost(self):
        light = predict(define_application("l", cycles_per_packet=100))
        heavy = predict(define_application("h", cycles_per_packet=5000))
        assert heavy["server_gbps"] < light["server_gbps"]
        assert heavy["bottleneck"] == "cpu"

    def test_cluster_prediction(self):
        app = define_application("nat", cycles_per_packet=600)
        result = predict(app, packet_bytes=64, cluster_nodes=4)
        assert result["cluster_nodes"] == 4
        # The cluster aggregate exceeds a single server running the app
        # alone, but carries the VLB forwarding+flowlet tax per node.
        assert 0 < result["cluster_gbps"] < 4 * result["server_gbps"]

    def test_routing_like_app_matches_routing(self):
        """Defining an app with IP routing's profile reproduces the
        routing operating point."""
        increment = (cal.IP_ROUTING.cpu_base_cycles
                     - cal.MINIMAL_FORWARDING.cpu_base_cycles)
        extra_lines = (cal.IP_ROUTING.mem_base_bytes
                       - cal.MINIMAL_FORWARDING.mem_base_bytes) / 64
        lookalike = define_application("rtr2", cycles_per_packet=increment,
                                       extra_memory_lines=extra_lines)
        ours = max_loss_free_rate(WorkloadSpec.fixed(64, app=lookalike))
        paper = max_loss_free_rate(WorkloadSpec.fixed(64, app=cal.IP_ROUTING))
        assert ours.rate_gbps == pytest.approx(paper.rate_gbps, rel=0.01)
