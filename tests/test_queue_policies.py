"""Tests for RED and drop-from-front queue disciplines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.click.elements.queue_policies import DropFrontQueue, RedQueue
from repro.errors import ConfigurationError
from repro.net import Packet


def _packet(seq=0):
    packet = Packet.udp("1.0.0.1", "2.0.0.2")
    packet.flow_seq = seq
    return packet


class TestRedQueue:
    def test_below_min_thresh_no_drops(self):
        queue = RedQueue(capacity=100, min_thresh=25, max_thresh=50)
        for _ in range(20):
            queue.receive(_packet())
        assert queue.early_drops == 0
        assert len(queue) == 20

    def test_probability_curve_shape(self):
        queue = RedQueue(capacity=100, min_thresh=20, max_thresh=40,
                         max_p=0.1)
        queue.avg = 10
        assert queue.drop_probability() == 0.0
        queue.avg = 30
        assert queue.drop_probability() == pytest.approx(0.05)
        queue.avg = 40
        assert queue.drop_probability() == pytest.approx(0.1)
        queue.avg = 60  # gentle region
        assert 0.1 < queue.drop_probability() < 1.0
        queue.avg = 85
        assert queue.drop_probability() == 1.0

    def test_sustained_overload_drops_early(self):
        queue = RedQueue(capacity=200, min_thresh=20, max_thresh=60,
                         max_p=0.5, weight=0.2, seed=1)
        for _ in range(500):
            queue.receive(_packet())
            if len(queue) > 0 and queue.packets_in % 3 == 0:
                queue.pull()  # slow consumer
        assert queue.early_drops > 0
        # RED keeps the average occupancy near/below max_thresh.
        assert queue.avg < 2 * 60

    def test_ewma_tracks_occupancy(self):
        queue = RedQueue(capacity=100, weight=0.5)
        for _ in range(10):
            queue.receive(_packet())
        assert 0 < queue.avg <= 10

    def test_bad_configs(self):
        with pytest.raises(ConfigurationError):
            RedQueue(capacity=10, min_thresh=8, max_thresh=4)
        with pytest.raises(ConfigurationError):
            RedQueue(max_p=0)
        with pytest.raises(ConfigurationError):
            RedQueue(weight=2)

    @settings(max_examples=30, deadline=None)
    @given(avg=st.floats(min_value=0, max_value=500, allow_nan=False))
    def test_probability_always_valid_and_monotone(self, avg):
        queue = RedQueue(capacity=500, min_thresh=50, max_thresh=100)
        queue.avg = avg
        p1 = queue.drop_probability()
        assert 0.0 <= p1 <= 1.0
        queue.avg = avg + 10
        assert queue.drop_probability() >= p1


class TestDropFrontQueue:
    def test_overflow_evicts_oldest(self):
        queue = DropFrontQueue(capacity=3)
        for seq in range(1, 6):
            queue.receive(_packet(seq))
        held = []
        while True:
            packet = queue.pull()
            if packet is None:
                break
            held.append(packet.flow_seq)
        # Oldest two evicted; newest three retained.
        assert held == [3, 4, 5]
        assert queue.front_drops == 2

    def test_no_drops_under_capacity(self):
        queue = DropFrontQueue(capacity=10)
        for seq in range(5):
            queue.receive(_packet(seq))
        assert queue.front_drops == 0
        assert len(queue) == 5
