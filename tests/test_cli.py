"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_experiments_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "RB4-R" in out

    def test_experiments_run_one(self, capsys):
        assert main(["experiments", "T1"]) == 0
        out = capsys.readouterr().out
        assert "9.77" in out

    def test_experiments_unknown(self, capsys):
        assert main(["experiments", "Z9"]) == 2

    def test_plan(self, capsys):
        assert main(["plan", "64"]) == 0
        out = capsys.readouterr().out
        assert "KAryNFly" in out
        assert "switched" in out

    def test_server(self, capsys):
        assert main(["server", "--app", "ipsec", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "1.40 Gbps" in out
        assert "cpu" in out

    def test_server_next_gen(self, capsys):
        assert main(["server", "--app", "routing", "--spec", "next-gen",
                     "--no-nic-limit"]) == 0
        out = capsys.readouterr().out
        assert "memory" in out

    def test_rb4(self, capsys):
        assert main(["rb4"]) == 0
        out = capsys.readouterr().out
        assert "12.00" in out
        assert "47.6" in out

    def test_trace_generate_and_info(self, capsys, tmp_path):
        path = str(tmp_path / "t.pcap")
        assert main(["trace", "generate", path, "--packets", "500"]) == 0
        assert main(["trace", "info", path]) == 0
        out = capsys.readouterr().out
        assert "500 packets" in out

    def test_experiments_summary(self, capsys):
        assert main(["experiments", "summary"]) == 0
        out = capsys.readouterr().out
        assert "RB4 throughput" in out
        assert "ratio" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "worst disagreement" in out

    def test_power(self, capsys):
        assert main(["power", "--servers", "4"]) == 0
        out = capsys.readouterr().out
        assert "2.60 kW" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
