"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_experiments_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "RB4-R" in out

    def test_experiments_run_one(self, capsys):
        assert main(["experiments", "T1"]) == 0
        out = capsys.readouterr().out
        assert "9.77" in out

    def test_experiments_unknown(self, capsys):
        assert main(["experiments", "Z9"]) == 2

    def test_plan(self, capsys):
        assert main(["plan", "64"]) == 0
        out = capsys.readouterr().out
        assert "KAryNFly" in out
        assert "switched" in out

    def test_server(self, capsys):
        assert main(["server", "--app", "ipsec", "--size", "64"]) == 0
        out = capsys.readouterr().out
        assert "1.40 Gbps" in out
        assert "cpu" in out

    def test_server_next_gen(self, capsys):
        assert main(["server", "--app", "routing", "--spec", "next-gen",
                     "--no-nic-limit"]) == 0
        out = capsys.readouterr().out
        assert "memory" in out

    def test_rb4(self, capsys):
        assert main(["rb4"]) == 0
        out = capsys.readouterr().out
        assert "12.00" in out
        assert "47.6" in out

    def test_plan_ports_flag(self, capsys):
        assert main(["plan", "--ports", "4"]) == 0
        out = capsys.readouterr().out
        assert "N=4 ports" in out

    def test_plan_without_ports_errors(self, capsys):
        assert main(["plan"]) == 2
        assert "port count" in capsys.readouterr().err

    def test_faults_curve(self, capsys):
        assert main(["faults", "curve", "--nodes", "8"]) == 0
        out = capsys.readouterr().out
        assert "Degradation, 8 nodes" in out
        assert "uniform" in out

    def test_faults_curve_is_default_action(self, capsys):
        assert main(["faults"]) == 0
        assert "Degradation" in capsys.readouterr().out

    def test_faults_run_default_schedule(self, capsys):
        assert main(["faults", "run", "--nodes", "4", "--duration-ms", "1",
                     "--load", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "2 fault events" in out
        assert "node_down" in out and "node_up" in out
        assert "all FIBs current" in out

    def test_faults_run_schedule_file(self, capsys, tmp_path):
        from repro.faults import FaultSchedule
        path = tmp_path / "faults.json"
        path.write_text(FaultSchedule()
                        .crash_node(at=0.2e-3, node=1).to_json())
        assert main(["faults", "run", "--nodes", "4", "--duration-ms", "1",
                     "--load", "0.2", "--schedule", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 fault events" in out
        assert "1 failed" in out

    def test_trace_generate_and_info(self, capsys, tmp_path):
        path = str(tmp_path / "t.pcap")
        assert main(["trace", "generate", path, "--packets", "500"]) == 0
        assert main(["trace", "info", path]) == 0
        out = capsys.readouterr().out
        assert "500 packets" in out

    def test_experiments_summary(self, capsys):
        assert main(["experiments", "summary"]) == 0
        out = capsys.readouterr().out
        assert "RB4 throughput" in out
        assert "ratio" in out

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "worst disagreement" in out

    def test_power(self, capsys):
        assert main(["power", "--servers", "4"]) == 0
        out = capsys.readouterr().out
        assert "2.60 kW" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestParallelCommand:
    def test_parallel_run_inline(self, capsys):
        assert main(["parallel", "run", "rb4", "--workers", "2",
                     "--backend", "inline", "--duration-ms", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "4 nodes across 2 worker(s)" in out
        assert "critical-path" in out
        assert "delivered" in out

    def test_parallel_single_worker_delegates(self, capsys):
        assert main(["parallel", "run", "rb4", "--workers", "1",
                     "--backend", "inline", "--duration-ms", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "single-heap run" in out

    def test_parallel_matches_across_worker_counts(self, capsys):
        assert main(["parallel", "run", "rb4", "--workers", "1",
                     "--backend", "inline", "--duration-ms", "0.4"]) == 0
        single = capsys.readouterr().out.splitlines()[1]
        assert main(["parallel", "run", "rb4", "--workers", "4",
                     "--backend", "inline", "--duration-ms", "0.4"]) == 0
        sharded = capsys.readouterr().out.splitlines()[1]
        assert single == sharded  # offered/delivered/dropped line

    def test_parallel_bad_topology(self, capsys):
        assert main(["parallel", "run", "mesh9"]) == 2
        assert "rb4/rb8/rb32" in capsys.readouterr().err

    def test_parallel_too_many_workers(self, capsys):
        assert main(["parallel", "run", "rb4", "--workers", "9",
                     "--backend", "inline"]) == 2
        assert "partition count" in capsys.readouterr().err
