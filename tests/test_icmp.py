"""Tests for ICMP generation and the error-generator element."""

import pytest

from repro.click import Discard
from repro.click.elements.icmp import IcmpErrorGenerator
from repro.errors import ConfigurationError, PacketError
from repro.net import IPv4Address, Packet
from repro.net.checksum import verify_checksum
from repro.net.icmp import (
    IcmpHeader,
    TYPE_DEST_UNREACHABLE,
    TYPE_TIME_EXCEEDED,
    destination_unreachable,
    parse_icmp,
    time_exceeded,
)


class TestIcmpCodec:
    def test_header_round_trip(self):
        header = IcmpHeader(icmp_type=11, code=0, rest=0)
        raw = header.pack(b"payload")
        again = IcmpHeader.unpack(raw)
        assert again.icmp_type == 11
        assert again.checksum == header.checksum

    def test_checksum_covers_payload(self):
        raw = IcmpHeader(icmp_type=11).pack(b"abcdef")
        assert verify_checksum(raw)

    def test_truncated_rejected(self):
        with pytest.raises(PacketError):
            IcmpHeader.unpack(b"\x0b\x00\x00")


class TestErrorGeneration:
    def test_time_exceeded_addressing(self):
        offending = Packet.udp("10.5.5.5", "10.9.9.9", length=200, ttl=1)
        router = IPv4Address("192.88.0.1")
        error = time_exceeded(offending, router)
        assert error.ip.src == router
        assert error.ip.dst == offending.ip.src
        assert error.ip.proto == 1
        assert parse_icmp(error).icmp_type == TYPE_TIME_EXCEEDED

    def test_unreachable_quotes_offender(self):
        offending = Packet.udp("10.5.5.5", "99.9.9.9", length=128,
                               src_port=4242)
        error = destination_unreachable(offending, IPv4Address("192.88.0.1"))
        header = parse_icmp(error)
        assert header.icmp_type == TYPE_DEST_UNREACHABLE
        # RFC 792: quoted bytes include the offender's IP header (whose
        # source address must appear inside the ICMP payload).
        assert offending.ip.src.to_bytes() in error.payload

    def test_non_ip_rejected(self):
        with pytest.raises(PacketError):
            time_exceeded(Packet(length=64), IPv4Address(1))

    def test_parse_rejects_non_icmp(self):
        with pytest.raises(PacketError):
            parse_icmp(Packet.udp("1.1.1.1", "2.2.2.2"))


class TestIcmpElement:
    def _generator(self, kind="time-exceeded", rate=1000.0, burst=2):
        gen = IcmpErrorGenerator(IPv4Address("192.88.0.1"), kind,
                                 rate_pps=rate, burst=burst)
        sink = []

        class Sink(Discard):
            def process(self, packet, port):
                sink.append(packet)

        gen.connect_to(Sink(name="sink-%s" % kind))
        return gen, sink

    def test_generates_errors(self):
        gen, sink = self._generator()
        gen.receive(Packet.udp("10.0.0.1", "10.0.0.2", ttl=1))
        assert len(sink) == 1
        assert sink[0].annotations["icmp_type"] == TYPE_TIME_EXCEEDED
        assert gen.generated == 1

    def test_rate_limit_suppresses(self):
        gen, sink = self._generator(burst=2)
        for _ in range(10):
            gen.receive(Packet.udp("10.0.0.1", "10.0.0.2", ttl=1))
        assert len(sink) == 2  # burst exhausted, clock never advanced
        assert gen.suppressed == 8

    def test_tokens_refill_with_time(self):
        gen, sink = self._generator(rate=1000.0, burst=1)
        gen.receive(Packet.udp("10.0.0.1", "10.0.0.2"))
        gen.receive(Packet.udp("10.0.0.1", "10.0.0.2"))
        assert len(sink) == 1
        gen.now = 0.01  # 10 ms -> 10 new tokens (capped at burst=1)
        gen.receive(Packet.udp("10.0.0.1", "10.0.0.2"))
        assert len(sink) == 2

    def test_non_ip_suppressed(self):
        gen, sink = self._generator()
        gen.receive(Packet(length=64))
        assert sink == []

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            IcmpErrorGenerator(IPv4Address(1), "bogus")
        with pytest.raises(ConfigurationError):
            IcmpErrorGenerator(IPv4Address(1), "unreachable", rate_pps=0)
