"""Tests for the DES-measured CPU-load profiler (Sec. 5.3 methodology)."""

import pytest

from repro import calibration as cal
from repro.analysis.profile import (
    ProfilePoint,
    measured_load_is_flat,
    profile_cpu_load,
)
from repro.errors import ConfigurationError


class TestProfiler:
    def test_measured_load_matches_calibration(self):
        points = profile_cpu_load(offered_gbps=[4, 8])
        expected = (cal.MINIMAL_FORWARDING.cpu_cycles(64)
                    + cal.DEFAULT_BOOKKEEPING_CYCLES)
        for point in points:
            assert point.measured_cycles_per_packet == pytest.approx(
                expected, rel=0.02)

    def test_load_flat_across_rates(self):
        # The paper's conclusion 4: per-packet load constant in rate.
        points = profile_cpu_load(offered_gbps=[2, 5, 8])
        assert measured_load_is_flat(points)

    def test_raw_utilization_always_full(self):
        # Click polls continuously: raw CPU utilization is ~100 % at every
        # offered rate -- which is exactly why the correction is needed.
        for point in profile_cpu_load(offered_gbps=[2, 8]):
            assert point.raw_cpu_utilization == pytest.approx(1.0, abs=0.02)

    def test_empty_polls_fall_with_rate(self):
        low, high = profile_cpu_load(offered_gbps=[2, 8])
        assert high.empty_poll_fraction < low.empty_poll_fraction

    def test_no_batching_measures_higher_cost(self):
        batched = profile_cpu_load(offered_gbps=[1])[0]
        unbatched = profile_cpu_load(offered_gbps=[1], kp=1, kn=1)[0]
        assert unbatched.measured_cycles_per_packet > \
            3 * batched.measured_cycles_per_packet

    def test_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            profile_cpu_load(offered_gbps=[])
        with pytest.raises(ConfigurationError):
            profile_cpu_load(offered_gbps=[-1])
        with pytest.raises(ConfigurationError):
            measured_load_is_flat([ProfilePoint(1, 1, 1, 1)])
