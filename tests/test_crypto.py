"""Tests for AES-128, block modes, and ESP encapsulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    AES128,
    EspContext,
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    esp_decapsulate,
    esp_encapsulate,
)
from repro.crypto.aes import INV_SBOX, SBOX
from repro.crypto.modes import pkcs7_pad, pkcs7_unpad
from repro.errors import CryptoError
from repro.net import IPv4Address, Packet


class TestAES128:
    def test_fips197_appendix_b(self):
        # FIPS-197 Appendix B: the canonical AES-128 example vector.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c(self):
        # FIPS-197 Appendix C.1 example vector.
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        cipher = AES128(key)
        assert cipher.encrypt_block(plaintext) == expected
        assert cipher.decrypt_block(expected) == plaintext

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))

    def test_sbox_known_entries(self):
        # Spot-check canonical S-box values.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_bad_key_length(self):
        with pytest.raises(CryptoError):
            AES128(b"short")

    def test_bad_block_length(self):
        cipher = AES128(b"\x00" * 16)
        with pytest.raises(CryptoError):
            cipher.encrypt_block(b"\x00" * 15)
        with pytest.raises(CryptoError):
            cipher.decrypt_block(b"\x00" * 17)

    @settings(max_examples=20, deadline=None)
    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestModes:
    def test_pkcs7_round_trip(self):
        for n in range(0, 33):
            data = bytes(range(n % 256))[:n]
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_pkcs7_rejects_corrupt(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"\x00" * 15 + b"\x03")
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"")
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"\x00" * 15 + b"\x11")  # pad byte > block

    def test_nist_sp800_38a_cbc_vector(self):
        # NIST SP 800-38A, F.2.1 (CBC-AES128.Encrypt), first block.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("7649abac8119b246cee98e9b12e9197d")
        ciphertext = cbc_encrypt(AES128(key), iv, plaintext)
        # Our CBC pads with PKCS#7; the first block must match the vector.
        assert ciphertext[:16] == expected

    def test_nist_sp800_38a_cbc_chaining(self):
        # F.2.1 continued: second block chains off the first ciphertext.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51")
        expected = bytes.fromhex(
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2")
        ciphertext = cbc_encrypt(AES128(key), iv, plaintext)
        assert ciphertext[:32] == expected

    @settings(max_examples=15, deadline=None)
    @given(key=st.binary(min_size=16, max_size=16),
           iv=st.binary(min_size=16, max_size=16),
           plaintext=st.binary(min_size=0, max_size=100))
    def test_cbc_round_trip(self, key, iv, plaintext):
        cipher = AES128(key)
        ciphertext = cbc_encrypt(cipher, iv, plaintext)
        assert len(ciphertext) % 16 == 0
        assert cbc_decrypt(cipher, iv, ciphertext) == plaintext

    def test_cbc_bad_iv(self):
        cipher = AES128(b"\x00" * 16)
        with pytest.raises(CryptoError):
            cbc_encrypt(cipher, b"\x00" * 8, b"data")
        with pytest.raises(CryptoError):
            cbc_decrypt(cipher, b"\x00" * 8, b"\x00" * 16)

    def test_cbc_unaligned_ciphertext(self):
        cipher = AES128(b"\x00" * 16)
        with pytest.raises(CryptoError):
            cbc_decrypt(cipher, b"\x00" * 16, b"\x00" * 17)

    @settings(max_examples=15, deadline=None)
    @given(key=st.binary(min_size=16, max_size=16),
           nonce=st.binary(min_size=16, max_size=16),
           data=st.binary(min_size=0, max_size=100))
    def test_ctr_is_an_involution(self, key, nonce, data):
        cipher = AES128(key)
        once = ctr_transform(cipher, nonce, data)
        assert ctr_transform(cipher, nonce, once) == data
        assert len(once) == len(data)

    def test_ctr_counter_wraps(self):
        cipher = AES128(b"\x01" * 16)
        nonce = b"\xff" * 16  # counter at max; must wrap, not crash
        data = b"x" * 48
        assert ctr_transform(cipher, nonce,
                             ctr_transform(cipher, nonce, data)) == data


def _context(spi=7):
    return EspContext(spi=spi, key=b"\x02" * 16,
                      tunnel_src=IPv4Address("172.16.0.1"),
                      tunnel_dst=IPv4Address("172.16.0.2"))


class TestESP:
    def test_encapsulate_decapsulate_round_trip(self):
        ctx_out = _context()
        ctx_in = _context()
        packet = Packet.udp("10.0.0.1", "10.0.0.2", length=128,
                            src_port=4500, dst_port=80)
        outer = esp_encapsulate(ctx_out, packet)
        assert outer.ip.proto == 50
        assert outer.ip.src == IPv4Address("172.16.0.1")
        inner = esp_decapsulate(ctx_in, outer)
        assert inner.ip.src == packet.ip.src
        assert inner.ip.dst == packet.ip.dst
        assert inner.l4.src_port == 4500

    def test_sequence_numbers_increment(self):
        ctx = _context()
        packet = Packet.udp("1.1.1.1", "2.2.2.2", length=64)
        first = esp_encapsulate(ctx, packet)
        second = esp_encapsulate(ctx, packet)
        assert first.annotations["esp_seq"] == 1
        assert second.annotations["esp_seq"] == 2

    def test_outer_packet_is_larger(self):
        ctx = _context()
        packet = Packet.udp("1.1.1.1", "2.2.2.2", length=64)
        outer = esp_encapsulate(ctx, packet)
        assert outer.length > packet.length

    def test_spi_mismatch_rejected(self):
        outer = esp_encapsulate(_context(spi=7),
                                Packet.udp("1.1.1.1", "2.2.2.2", length=64))
        with pytest.raises(CryptoError):
            esp_decapsulate(_context(spi=8), outer)

    def test_non_esp_packet_rejected(self):
        with pytest.raises(CryptoError):
            esp_decapsulate(_context(), Packet.udp("1.1.1.1", "2.2.2.2"))

    def test_non_ip_packet_rejected(self):
        with pytest.raises(CryptoError):
            esp_encapsulate(_context(), Packet(length=64))

    def test_truncated_payload_rejected(self):
        ctx = _context()
        outer = esp_encapsulate(ctx, Packet.udp("1.1.1.1", "2.2.2.2"))
        outer.payload = outer.payload[:10]
        with pytest.raises(CryptoError):
            esp_decapsulate(_context(), outer)
