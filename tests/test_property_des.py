"""Property tests on the cluster DES: conservation and ordering invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import RouteBricksRouter
from repro.workloads import FixedSizeWorkload


def _random_events(num_nodes, packets, seed):
    rng = random.Random(seed)
    workload = FixedSizeWorkload(packet_bytes=200 + rng.randrange(1300),
                                 num_flows=16, seed=seed)
    events = []
    now = 0.0
    for packet in workload.packets(packets):
        now += rng.expovariate(1e6)
        ingress = rng.randrange(num_nodes)
        egress = rng.randrange(num_nodes)
        events.append((now, ingress, egress, packet))
    return events


@settings(max_examples=12, deadline=None)
@given(num_nodes=st.integers(min_value=2, max_value=6),
       packets=st.integers(min_value=10, max_value=200),
       seed=st.integers(min_value=0, max_value=999),
       flowlets=st.booleans())
def test_packet_conservation(num_nodes, packets, seed, flowlets):
    """Every offered packet is either delivered or counted dropped."""
    router = RouteBricksRouter(num_nodes=num_nodes, use_flowlets=flowlets,
                               seed=seed)
    report = router.simulate(_random_events(num_nodes, packets, seed))
    assert report.delivered_packets + report.dropped_packets \
        == report.offered_packets
    total_egress = sum(s["egress"] for s in report.node_stats)
    assert total_egress == report.delivered_packets


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_paths_are_loop_free(seed):
    """No packet visits more than 3 servers in a full mesh (S, I, D)."""
    router = RouteBricksRouter(num_nodes=4, seed=seed)
    sim, nodes = router.build_simulation()
    paths = []
    for node in nodes:
        node.egress_callback = lambda p, now: paths.append(p.path)
    for time, ingress, egress, packet in _random_events(4, 100, seed):
        sim.schedule_at(time,
                        lambda n=nodes[ingress], p=packet, e=egress:
                        n.ingress(p, e))
    sim.run()
    for path in paths:
        assert 1 <= len(path) <= 3
        assert len(set(path)) == len(path)  # no repeated nodes


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_single_path_traffic_never_reorders(seed):
    """A single low-rate flow (no balancing pressure) exits in order."""
    router = RouteBricksRouter(num_nodes=4, seed=seed)
    workload = FixedSizeWorkload(packet_bytes=300, num_flows=1, seed=seed)
    events = [(index * 1e-4, 0, 2, packet)
              for index, packet in enumerate(workload.packets(50))]
    report = router.simulate(events)
    assert report.reordered_fraction == 0.0
    assert report.delivered_packets == 50
