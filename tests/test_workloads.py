"""Tests for traffic generation."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.workloads import (
    AbileneTrace,
    FixedSizeWorkload,
    FlowGenerator,
    TrafficMatrix,
    hotspot_matrix,
    permutation_matrix,
    uniform_matrix,
)
from repro.workloads.abilene import ABILENE_SIZE_MIX, mix_mean_bytes


class TestFixedSize:
    def test_all_packets_same_size(self):
        workload = FixedSizeWorkload(packet_bytes=128, num_flows=4)
        packets = list(workload.packets(20))
        assert len(packets) == 20
        assert all(p.length == 128 for p in packets)

    def test_flow_sequence_numbers_increase(self):
        workload = FixedSizeWorkload(num_flows=2)
        packets = list(workload.packets(6))
        flow0 = [p.flow_seq for p in packets[::2]]
        assert flow0 == [1, 2, 3]

    def test_deterministic(self):
        a = [p.ip.dst for p in FixedSizeWorkload(seed=5).packets(10)]
        b = [p.ip.dst for p in FixedSizeWorkload(seed=5).packets(10)]
        assert a == b

    def test_dst_pool(self):
        from repro.net import IPv4Address
        pool = [IPv4Address("1.1.1.1"), IPv4Address("2.2.2.2")]
        workload = FixedSizeWorkload(num_flows=2, dst_pool=pool)
        dsts = {str(p.ip.dst) for p in workload.packets(4)}
        assert dsts == {"1.1.1.1", "2.2.2.2"}

    def test_rejects_tiny_packets(self):
        with pytest.raises(ConfigurationError):
            FixedSizeWorkload(packet_bytes=32)

    def test_rejects_negative_count(self):
        workload = FixedSizeWorkload()
        with pytest.raises(ValueError):
            list(workload.packets(-1))


class TestAbilene:
    def test_size_mix_sums_to_one(self):
        assert sum(w for _, w in ABILENE_SIZE_MIX) == pytest.approx(1.0)

    def test_mix_mean_matches_calibration(self):
        assert mix_mean_bytes() == pytest.approx(
            cal.ABILENE_MEAN_PACKET_BYTES, rel=0.005)

    def test_empirical_mean_converges(self):
        trace = AbileneTrace(seed=1)
        sizes = [p.length for p in trace.packets(20000)]
        mean = sum(sizes) / len(sizes)
        assert mean == pytest.approx(cal.ABILENE_MEAN_PACKET_BYTES, rel=0.03)

    def test_sizes_come_from_mix(self):
        trace = AbileneTrace(seed=2)
        allowed = {size for size, _ in ABILENE_SIZE_MIX}
        assert {p.length for p in trace.packets(500)} <= allowed

    def test_flows_have_increasing_seq(self):
        trace = AbileneTrace(num_flows=3, seed=3)
        seen = {}
        for packet in trace.packets(300):
            key = packet.five_tuple()
            if key in seen:
                assert packet.flow_seq == seen[key] + 1
            seen[key] = packet.flow_seq

    def test_timed_packets_rate(self):
        trace = AbileneTrace(seed=4)
        events = list(trace.timed_packets(5000, rate_bps=10e9))
        total_bits = sum(p.length * 8 for _, p in events)
        duration = events[-1][0]
        assert total_bits / duration == pytest.approx(10e9, rel=0.1)

    def test_timed_packets_monotone(self):
        trace = AbileneTrace(seed=5)
        times = [t for t, _ in trace.timed_packets(200, rate_bps=1e9)]
        assert times == sorted(times)

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            AbileneTrace(num_flows=0)
        with pytest.raises(ConfigurationError):
            AbileneTrace(mean_flow_packets=0.5)
        with pytest.raises(ConfigurationError):
            AbileneTrace(elephant_fraction=1.0)


class TestMatrices:
    def test_uniform_row_sums(self):
        matrix = uniform_matrix(8, 10e9)
        for i in range(8):
            assert matrix.row_sum(i) == pytest.approx(10e9)
            assert matrix.col_sum(i) == pytest.approx(10e9)
        assert matrix.is_admissible(10e9)

    def test_permutation_admissible(self):
        matrix = permutation_matrix(6, 10e9, shift=2)
        assert matrix.is_admissible(10e9)
        assert matrix.demands[0][2] == 10e9

    def test_permutation_rejects_identity_shift(self):
        with pytest.raises(ConfigurationError):
            permutation_matrix(4, 10e9, shift=4)

    def test_hotspot_admissible(self):
        matrix = hotspot_matrix(6, 10e9, hot_node=2)
        assert matrix.is_admissible(10e9)
        assert matrix.col_sum(2) <= 10e9 * 1.0001

    def test_uniformity_metric(self):
        assert uniform_matrix(6, 10e9).uniformity() == pytest.approx(1.0)
        assert permutation_matrix(6, 10e9).uniformity() < 0.3

    def test_scaled(self):
        matrix = uniform_matrix(4, 10e9).scaled(0.5)
        assert matrix.row_sum(0) == pytest.approx(5e9)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            TrafficMatrix([[0, 1, 2], [1, 0, 2]])
        with pytest.raises(ConfigurationError):
            TrafficMatrix([[0, -1], [1, 0]])


class TestFlowGenerator:
    def test_packet_counts(self):
        gen = FlowGenerator(num_flows=5, packets_per_flow=10)
        events = list(gen.timed_packets())
        assert len(events) == 50

    def test_times_sorted(self):
        gen = FlowGenerator(num_flows=5, packets_per_flow=10, seed=2)
        times = [t for t, _ in gen.timed_packets()]
        assert times == sorted(times)

    def test_per_flow_seq_in_arrival_order(self):
        gen = FlowGenerator(num_flows=3, packets_per_flow=20, seed=3)
        last = {}
        for _, packet in gen.timed_packets():
            key = packet.five_tuple()
            assert packet.flow_seq == last.get(key, 0) + 1
            last[key] = packet.flow_seq

    def test_bursty_structure(self):
        gen = FlowGenerator(num_flows=1, packets_per_flow=16, burst_size=8,
                            burst_gap_sec=1e-3, intra_burst_gap_sec=1e-6,
                            seed=4)
        times = [t for t, _ in gen.timed_packets()]
        gaps = [b - a for a, b in zip(times, times[1:])]
        # 14 small intra-burst gaps and 1 big inter-burst gap.
        assert sum(1 for g in gaps if g > 1e-4) == 1

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            FlowGenerator(num_flows=0)
        with pytest.raises(ConfigurationError):
            FlowGenerator(burst_size=0)
