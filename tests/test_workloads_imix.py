"""Tests for IMIX workloads."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.imix import (
    MIXES,
    ImixWorkload,
    imix_rate_gbps,
    mix_mean_bytes,
)


class TestMixes:
    def test_simple_imix_mean(self):
        # (7x64 + 4x570 + 1x1518) / 12 packets = 353.83 B.
        assert mix_mean_bytes(MIXES["simple"]) == pytest.approx(353.83,
                                                                abs=0.5)

    def test_minimum_mix(self):
        assert mix_mean_bytes(MIXES["minimum"]) == 64

    def test_bad_mix(self):
        with pytest.raises(ConfigurationError):
            mix_mean_bytes([(100, 0)])


class TestImixWorkload:
    def test_sizes_from_mix(self):
        workload = ImixWorkload("simple", seed=1)
        sizes = {p.length for p in workload.packets(300)}
        assert sizes <= {64, 570, 1518}
        assert len(sizes) == 3

    def test_empirical_mean(self):
        workload = ImixWorkload("simple", seed=2)
        sizes = [p.length for p in workload.packets(12000)]
        assert sum(sizes) / len(sizes) == pytest.approx(353, rel=0.05)

    def test_custom_mix(self):
        workload = ImixWorkload([(128, 1), (256, 1)], seed=3)
        sizes = {p.length for p in workload.packets(100)}
        assert sizes <= {128, 256}
        assert workload.mean_packet_bytes() == 192

    def test_flow_sequences(self):
        workload = ImixWorkload("simple", num_flows=2, seed=4)
        packets = list(workload.packets(6))
        assert [p.flow_seq for p in packets[::2]] == [1, 2, 3]

    def test_unknown_mix(self):
        with pytest.raises(ConfigurationError):
            ImixWorkload("jumbo")

    def test_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            ImixWorkload([(32, 1)])


class TestImixRates:
    def test_rate_between_64b_and_large(self):
        imix = imix_rate_gbps("forwarding", "simple")
        from repro import calibration as cal
        from repro.perfmodel import max_loss_free_rate
        from repro.workloads import WorkloadSpec
        small = max_loss_free_rate(WorkloadSpec.fixed(
            64, app=cal.MINIMAL_FORWARDING)).rate_gbps
        large = max_loss_free_rate(WorkloadSpec.fixed(
            1500, app=cal.MINIMAL_FORWARDING)).rate_gbps
        assert small < imix < large

    def test_minimum_mix_equals_64b(self):
        imix = imix_rate_gbps("forwarding", "minimum")
        assert imix == pytest.approx(9.77, rel=0.01)
