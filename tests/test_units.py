"""Tests for unit conversions."""

import pytest

from repro import units


def test_gbps_round_trip():
    assert units.to_gbps(units.gbps(12.3)) == pytest.approx(12.3)


def test_mpps_round_trip():
    assert units.to_mpps(units.mpps(18.96)) == pytest.approx(18.96)


def test_rate_conversions_are_inverses():
    bps = units.gbps(10)
    pps = units.rate_bps_to_pps(bps, 64)
    assert units.rate_pps_to_bps(pps, 64) == pytest.approx(bps)


def test_64b_line_rate_packet_rate():
    # 10 Gbps of 64 B packets is 19.53 Mpps -- the classic line-rate figure.
    pps = units.rate_bps_to_pps(units.gbps(10), 64)
    assert units.to_mpps(pps) == pytest.approx(19.53, abs=0.01)


def test_usec_round_trip():
    assert units.to_usec(units.usec(24.0)) == pytest.approx(24.0)


@pytest.mark.parametrize("bad", [0, -1, -64])
def test_rate_conversion_rejects_nonpositive_size(bad):
    with pytest.raises(ValueError):
        units.rate_bps_to_pps(1e9, bad)
    with pytest.raises(ValueError):
        units.rate_pps_to_bps(1e6, bad)


def test_packets_to_bits():
    assert units.packets_to_bits(1000, 64) == 1000 * 64 * 8
