"""Stateful NF suite: flow state, NF process/replay, dispatch strategies.

The load-bearing property is *end-state equivalence*: for every NF and
every core count, the locks / rss / scr strategies -- and every SCR
replica -- must finish with exactly the flow table the single-core
reference execution produces.  SCR's replay must also be exact: applying
a delta yields the entry the full computation produced.
"""

import pytest

from repro.costs import DEFAULT_COST_MODEL
from repro.errors import ConfigurationError
from repro.net.addresses import IPv4Address
from repro.net.flows import FiveTuple
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.stateful import (
    DROP,
    FORWARD,
    STRATEGIES,
    FirewallNF,
    FlowTable,
    NatNF,
    PolicerNF,
    apply_history,
    make_nf,
    merge_snapshots,
    run_all_strategies,
    run_strategy,
)
from repro.workloads import SkewedFlowWorkload

SEED = 20090917


def _records(count=3000, skew=1.1, churn=200, flows=64, seed=SEED):
    workload = SkewedFlowWorkload(num_flows=flows, skew=skew,
                                  churn_packets=churn, seed=seed)
    return list(workload.records(count))


def _key(n=1):
    return FiveTuple(src=IPv4Address("10.0.0.%d" % n),
                     dst=IPv4Address("10.1.0.1"), proto=17,
                     src_port=1000 + n, dst_port=80)


class TestFlowTable:
    def test_put_get_len_peak(self):
        table = FlowTable()
        assert table.get(_key()) is None
        table.put(_key(1), ("a",))
        table.put(_key(2), ("b",))
        table.remove(_key(1))
        assert len(table) == 1
        assert table.peak_entries == 2
        assert table.get(_key(2)) == ("b",)

    def test_snapshot_is_canonical(self):
        one, two = FlowTable(), FlowTable()
        one.put(_key(1), (1,))
        one.put(_key(2), (2,))
        two.put(_key(2), (2,))
        two.put(_key(1), (1,))
        assert one.snapshot() == two.snapshot()

    def test_merge_disjoint_snapshots(self):
        one, two = FlowTable(), FlowTable()
        one.put(_key(1), (1,))
        two.put(_key(2), (2,))
        merged = merge_snapshots(one.snapshot(), two.snapshot())
        assert len(merged) == 2

    def test_merge_conflicting_shards_raises(self):
        one, two = FlowTable(), FlowTable()
        one.put(_key(1), (1,))
        two.put(_key(1), (2,))
        with pytest.raises(ValueError):
            merge_snapshots(one.snapshot(), two.snapshot())


class TestNFs:
    def test_nat_port_is_deterministic_and_in_pool(self):
        records = _records(200)
        first = apply_history(NatNF(pool_size=5000), records).snapshot()
        second = apply_history(NatNF(pool_size=5000), records).snapshot()
        assert first == second
        for ext_port, packets, length in first.values():
            assert 1024 <= ext_port < 1024 + 5000
            assert packets >= 1 and length >= 64

    def test_firewall_state_machine(self):
        fw = FirewallNF(establish_after=2, max_packets=4)
        records = [r for r in _records(400, flows=1, churn=None)][:6]
        entry = None
        verdicts = []
        for rec in records:
            entry, verdict, _ = fw.process(entry, rec)
            verdicts.append(verdict)
        # packets 1..6: new, established x2, closed (drop) from the 4th on
        assert verdicts == [FORWARD, FORWARD, FORWARD, DROP, DROP, DROP]
        assert entry == (FirewallNF.CLOSED, 6)

    def test_policer_conforms_then_drops_then_refills(self):
        policer = PolicerNF(rate_bps=8000.0, burst_bytes=1000.0)
        rec = _records(1, flows=1, churn=None)[0]

        def at(time, length):
            return rec.__class__(seq=0, time=time, key=rec.key,
                                 length=length, flow_slot=0,
                                 flow_generation=0)

        entry, verdict, _ = policer.process(None, at(0.0, 800))
        assert verdict == FORWARD
        entry, verdict, _ = policer.process(entry, at(0.0, 800))
        assert verdict == DROP          # bucket exhausted
        # 1000 B/s refill: after 1 s there is room again.
        entry, verdict, _ = policer.process(entry, at(1.0, 800))
        assert verdict == FORWARD

    def test_lb_choice_is_sticky_and_in_range(self):
        records = _records(500)
        table = apply_history(make_nf("lb", num_backends=4), records)
        for backend, packets, _ in dict(table.items()).values():
            assert 0 <= backend < 4

    @pytest.mark.parametrize("nf_name", ["nat", "firewall", "policer", "lb"])
    def test_replay_matches_process(self, nf_name):
        """SCR's exactness contract: replaying a delta's args yields the
        same entry the full computation produced."""
        nf = make_nf(nf_name)
        replica = make_nf(nf_name)
        processed = {}
        replayed = {}
        for rec in _records(1500):
            entry, _, args = nf.process(processed.get(rec.key), rec)
            processed[rec.key] = entry
            replayed[rec.key] = replica.replay(replayed.get(rec.key), args)
            assert replayed[rec.key] == entry

    def test_make_nf_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_nf("dpi")

    def test_nf_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            NatNF(pool_size=0)
        with pytest.raises(ConfigurationError):
            FirewallNF(establish_after=5, max_packets=5)
        with pytest.raises(ConfigurationError):
            PolicerNF(rate_bps=0)
        with pytest.raises(ConfigurationError):
            make_nf("lb", num_backends=0)


class TestCostVectors:
    def test_state_access_vector_known_nfs(self):
        for name in ("nat", "firewall", "policer", "lb"):
            vector = DEFAULT_COST_MODEL.state_access_vector(name)
            assert vector.cpu_cycles > 0 and vector.mem_bytes > 0

    def test_state_access_vector_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_COST_MODEL.state_access_vector("dpi")

    def test_contended_lock_costs_more(self):
        free = DEFAULT_COST_MODEL.lock_vector(contended=False)
        contended = DEFAULT_COST_MODEL.lock_vector(contended=True)
        assert contended.cpu_cycles > free.cpu_cycles > 0

    def test_replay_is_much_cheaper_than_full_compute(self):
        replay = DEFAULT_COST_MODEL.scr_replay_vector()
        full = DEFAULT_COST_MODEL.state_access_vector("nat")
        assert replay.cpu_cycles * 10 < full.cpu_cycles


class TestDispatchEquivalence:
    @pytest.mark.parametrize("nf_name", ["nat", "firewall", "policer", "lb"])
    def test_all_strategies_reach_reference_end_state(self, nf_name):
        records = _records(2500)
        reference = apply_history(make_nf(nf_name), records).snapshot()
        for cores in (1, 2, 4):
            reports = run_all_strategies(lambda: make_nf(nf_name),
                                         records, cores)
            for strategy, report in reports.items():
                assert report.end_state == reference, \
                    "%s diverged at %d cores" % (strategy, cores)
            assert reports["scr"].replicas_identical

    def test_strategies_agree_on_drops(self):
        records = _records(2500)
        reports = run_all_strategies(lambda: make_nf("policer"), records, 4)
        dropped = {r.dropped for r in reports.values()}
        assert len(dropped) == 1 and dropped.pop() > 0

    def test_single_core_strategies_coincide(self):
        """With one core there is nothing to contend, pin, or replicate:
        every strategy degenerates to the reference execution."""
        records = _records(1500)
        reports = run_all_strategies(lambda: make_nf("nat"), records, 1)
        assert reports["rss"].lock_contended == 0
        assert reports["locks"].lock_contended == 0
        assert reports["locks"].coherence_transfers == 0
        rates = sorted(r.throughput_mpps for r in reports.values())
        # locks still pays the (uncontended) acquire and scr the encode,
        # so rates differ slightly but stay within 10%.
        assert rates[2] / rates[0] < 1.10


class TestDispatchCosts:
    def test_skew_collapses_locks_but_not_scr(self):
        records = _records(6000, skew=1.1, flows=512)
        reports = run_all_strategies(lambda: make_nf("nat"), records, 4)
        assert reports["locks"].lock_contended > 0
        assert reports["locks"].coherence_transfers > 0
        assert reports["scr"].throughput_mpps \
            > 1.5 * reports["locks"].throughput_mpps

    def test_rss_pays_no_synchronization(self):
        records = _records(2000)
        report = run_strategy(make_nf("nat"), records, 4, "rss")
        assert report.lock_contended == 0
        assert report.coherence_transfers == 0
        assert report.scr_deltas == 0
        assert report.resources.qpi_bytes == 0.0

    def test_scr_broadcasts_one_delta_per_packet(self):
        records = _records(2000)
        report = run_strategy(make_nf("nat"), records, 4, "scr")
        assert report.scr_deltas == len(records)
        assert report.scr_delta_bytes > 0

    def test_locks_charge_qpi_for_coherence(self):
        records = _records(2000)
        report = run_strategy(make_nf("nat"), records, 4, "locks")
        assert report.coherence_transfers > 0
        assert report.resources.qpi_bytes > 0.0

    def test_report_scalars_are_consistent(self):
        records = _records(1000)
        report = run_strategy(make_nf("nat"), records, 2, "scr")
        assert report.packets == 1000
        assert report.bytes_total == sum(r.length for r in records)
        assert len(report.per_core_cycles) == 2
        assert report.throughput_mpps > 0
        assert report.throughput_gbps > 0
        row = report.summary_row()
        assert row["strategy"] == "scr" and row["cores"] == 2

    def test_empty_history_yields_zero_report(self):
        report = run_strategy(make_nf("nat"), [], 4, "locks")
        assert report.packets == 0
        assert report.throughput_mpps == 0.0
        assert report.end_state == {}

    def test_run_strategy_validation(self):
        records = _records(10)
        with pytest.raises(ConfigurationError):
            run_strategy(make_nf("nat"), records, 4, "magic")
        with pytest.raises(ConfigurationError):
            run_strategy(make_nf("nat"), records, 0, "locks")
        with pytest.raises(ConfigurationError):
            run_strategy(make_nf("nat"), records, 4, "locks", core_hz=0)

    def test_strategies_cover_expected_names(self):
        assert STRATEGIES == ("locks", "rss", "scr")


class TestObservability:
    def test_counters_and_timeline_recorded(self):
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            records = _records(2000)
            run_all_strategies(lambda: make_nf("policer"), records, 4)
        assert registry.get("stateful_packets").total() == 3 * 2000
        assert registry.get("stateful_drops").total() > 0
        assert registry.get("lock_contended_acquires").total() > 0
        assert registry.get("state_coherence_transfers").total() > 0
        assert registry.get("scr_delta_messages").total() == 2000
        assert registry.get("scr_delta_bytes").total() > 0
        timeline = registry.get("flow_table_entries")
        assert timeline is not None
        # One occupancy series per strategy (labels carry the strategy).
        assert len(timeline._series) >= 3
