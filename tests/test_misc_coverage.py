"""Coverage for smaller public-surface paths not exercised elsewhere."""

import pytest

from repro import calibration as cal
from repro.click import RouterGraph
from repro.click.elements.standard import CounterElement, Discard
from repro.click.simrun import TimedForwardingRun
from repro.errors import ConfigurationError, SchedulingError
from repro.hw import Server, nehalem_server
from repro.hw.presets import NEHALEM_NEXT_GEN
from repro.perfmodel import saturation_throughput
from repro.simnet.stats import TimeSeries


class TestGraphAddAll:
    def test_add_all(self):
        graph = RouterGraph()
        counter = CounterElement(name="c")
        sink = Discard(name="d")
        graph.add_all([counter, sink])
        counter.connect_to(sink)
        graph.validate()
        assert len(graph) == 2


class TestSaturationThroughput:
    def test_matches_max_loss_free_rate(self):
        from repro.perfmodel import max_loss_free_rate
        from repro.workloads import WorkloadSpec
        spec = WorkloadSpec.fixed(cal.ABILENE_MEAN_PACKET_BYTES,
                                  app=cal.IP_ROUTING)
        direct = max_loss_free_rate(spec)
        wrapped = saturation_throughput(spec)
        assert wrapped.rate_bps == pytest.approx(direct.rate_bps)


class TestTimedRunWithRouting:
    def test_routing_app_saturates_lower(self):
        fwd_run = TimedForwardingRun(
            nehalem_server(num_ports=4, queues_per_port=2))
        rtr_run = TimedForwardingRun(
            nehalem_server(num_ports=4, queues_per_port=2),
            app=cal.IP_ROUTING)
        fwd = fwd_run.run(offered_bps=8e9, duration_sec=1e-3)
        rtr = rtr_run.run(offered_bps=8e9, duration_sec=1e-3)
        # 8 Gbps exceeds routing's 6.35 Gbps saturation but not
        # forwarding's 9.77.
        assert fwd.sustainable(max_backlog_packets=512)
        assert not rtr.sustainable(max_backlog_packets=512)


class TestNextGenServerAssembly:
    def test_next_gen_attaches_many_ports(self):
        server = Server(NEHALEM_NEXT_GEN, num_ports=16, queues_per_port=4)
        assert len(server.ports) == 16
        assert len(server.cores) == 32
        assert len(server.nics) == 8


class TestTimeSeriesSamples:
    def test_samples_copy(self):
        series = TimeSeries()
        series.record(1.0, 5)
        samples = series.samples()
        samples.append((2.0, 7))
        assert len(series) == 1  # external mutation does not leak in


class TestSchedulerErrors:
    def test_zero_rounds_rejected(self):
        from repro.click import Scheduler
        scheduler = Scheduler()
        scheduler.spawn(nehalem_server().cores[0])
        with pytest.raises(SchedulingError):
            scheduler.run_rounds(0)


class TestCalibrationAppRegistry:
    def test_all_three_apps_registered(self):
        assert set(cal.APPLICATIONS) == {"forwarding", "routing", "ipsec"}
        for app in cal.APPLICATIONS.values():
            assert app.cpu_cycles(64) > 0
            assert app.mem_bytes(64) > 0


class TestConfigErrorsSurface:
    def test_simrun_rejects_missing_ports(self):
        server = Server(NEHALEM_NEXT_GEN)  # no ports attached
        with pytest.raises(ConfigurationError):
            TimedForwardingRun(server)
