"""Tests for DIR-24-8, including property tests against the trie oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError
from repro.net import Prefix
from repro.routing import BinaryTrie, Dir24_8


@pytest.fixture
def table():
    d = Dir24_8()
    d.insert(Prefix.parse("10.0.0.0/8"), "ten")
    d.insert(Prefix.parse("10.1.0.0/16"), "ten-one")
    d.insert(Prefix.parse("10.1.2.0/24"), "ten-one-two")
    d.insert(Prefix.parse("10.1.2.128/25"), "long")
    return d


class TestBasics:
    def test_short_prefix_lookup(self, table):
        assert table.lookup("10.200.1.1") == "ten"
        assert table.lookup("10.1.50.1") == "ten-one"
        assert table.lookup("10.1.2.5") == "ten-one-two"

    def test_long_prefix_lookup(self, table):
        assert table.lookup("10.1.2.200") == "long"
        assert table.lookup("10.1.2.127") == "ten-one-two"

    def test_miss(self, table):
        assert table.lookup("99.0.0.1") is None

    def test_len(self, table):
        assert len(table) == 4

    def test_replace_does_not_grow(self, table):
        table.insert(Prefix.parse("10.0.0.0/8"), "TEN")
        assert len(table) == 4
        assert table.lookup("10.77.0.1") == "TEN"

    def test_default_route(self):
        d = Dir24_8()
        d.insert(Prefix(0, 0), "default")
        assert d.lookup("1.2.3.4") == "default"
        assert d.lookup("255.255.255.255") == "default"

    def test_none_value_rejected(self):
        d = Dir24_8()
        with pytest.raises(RoutingError):
            d.insert(Prefix.parse("1.0.0.0/8"), None)

    def test_memory_accounting_grows_with_long_tables(self):
        d = Dir24_8()
        base = d.memory_bytes()
        d.insert(Prefix.parse("10.1.2.128/25"), "x")
        assert d.memory_bytes() > base


class TestRemoval:
    def test_remove_long_restores_short(self, table):
        table.remove(Prefix.parse("10.1.2.128/25"))
        assert table.lookup("10.1.2.200") == "ten-one-two"

    def test_remove_short_under_long(self, table):
        table.remove(Prefix.parse("10.1.2.0/24"))
        assert table.lookup("10.1.2.5") == "ten-one"
        assert table.lookup("10.1.2.200") == "long"  # untouched

    def test_remove_missing_raises(self, table):
        with pytest.raises(RoutingError):
            table.remove(Prefix.parse("77.0.0.0/8"))

    def test_remove_all_leaves_empty(self, table):
        for text in ("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24",
                     "10.1.2.128/25"):
            table.remove(Prefix.parse(text))
        assert table.lookup("10.1.2.200") is None
        assert len(table) == 0

    def test_unhashable_values_do_not_leak_slots(self):
        """Insert/remove churn with unhashable (list) next hops must not
        grow the value store: re-inserting the same object dedups by
        identity, and removal reclaims the slot."""
        d = Dir24_8()
        prefix = Prefix.parse("10.0.0.0/8")
        hop = ["nh", 1]
        for _ in range(100):
            d.insert(prefix, hop)  # same object: one slot, not 100
        assert sum(v is not None for v in d._values) == 1
        for _ in range(100):
            d.insert(prefix, ["nh", 2])  # distinct objects: slots recycle
        assert len(d._values) <= 2
        d.remove(prefix)
        assert all(v is None for v in d._values)
        assert len(d) == 0

    def test_remove_churn_bounds_value_store(self):
        """A long insert/remove churn of distinct hashable values keeps
        ``_values`` bounded (removed routes give their slots back)."""
        d = Dir24_8()
        prefix = Prefix.parse("192.168.0.0/16")
        for i in range(500):
            d.insert(prefix, "hop-%d" % i)
            d.remove(prefix)
        assert len(d._values) <= 2
        assert d.lookup("192.168.1.1") is None

    def test_replacement_releases_displaced_value(self, table):
        before = len(table._values)
        for i in range(50):
            table.insert(Prefix.parse("10.1.2.0/24"), "churn-%d" % i)
        assert len(table._values) <= before + 1
        assert table.lookup("10.1.2.5") == "churn-49"

    def test_shared_value_survives_partial_removal(self):
        """Two prefixes routing to one (deduped) value: removing one must
        not reclaim the slot out from under the other."""
        d = Dir24_8()
        d.insert(Prefix.parse("10.0.0.0/8"), "shared")
        d.insert(Prefix.parse("20.0.0.0/8"), "shared")
        d.remove(Prefix.parse("10.0.0.0/8"))
        assert d.lookup("20.1.1.1") == "shared"
        d.remove(Prefix.parse("20.0.0.0/8"))
        assert d.lookup("20.1.1.1") is None

    def test_remove_16_with_sibling_24_present(self):
        # The covering lookup must not pick the longer inner prefix.
        d = Dir24_8()
        d.insert(Prefix.parse("10.0.0.0/8"), "eight")
        d.insert(Prefix.parse("10.1.0.0/16"), "sixteen")
        d.insert(Prefix.parse("10.1.0.0/24"), "twentyfour")
        d.remove(Prefix.parse("10.1.0.0/16"))
        assert d.lookup("10.1.0.1") == "twentyfour"
        assert d.lookup("10.1.99.1") == "eight"


# -- property tests against the trie oracle --------------------------------

_prefixes = st.tuples(st.integers(min_value=0, max_value=(1 << 32) - 1),
                      st.integers(min_value=0, max_value=32))
_ops = st.lists(st.tuples(st.sampled_from(["insert", "remove"]), _prefixes,
                          st.integers(min_value=1, max_value=5)),
                min_size=1, max_size=40)
_probes = st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                   min_size=1, max_size=30)


@settings(max_examples=60, deadline=None)
@given(ops=_ops, probes=_probes)
def test_dir24_8_matches_trie_oracle(ops, probes):
    """After any insert/remove sequence, DIR-24-8 agrees with the trie."""
    fast = Dir24_8()
    oracle = BinaryTrie()
    for op, (addr, length), value in ops:
        prefix = Prefix.from_address(addr, length)
        if op == "insert":
            fast.insert(prefix, value)
            oracle.insert(prefix, value)
        else:
            if oracle.contains(prefix):
                fast.remove(prefix)
                oracle.remove(prefix)
    for probe in probes:
        assert fast.lookup(probe) == oracle.lookup(probe), hex(probe)
    # Also probe the boundaries of every touched prefix.
    for _, (addr, length), _ in ops:
        prefix = Prefix.from_address(addr, length)
        lo = prefix.network.value
        hi = lo + (1 << (32 - length)) - 1 if length else (1 << 32) - 1
        for probe in (lo, hi):
            assert fast.lookup(probe) == oracle.lookup(probe), hex(probe)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_dir24_8_batch_lookup_matches_scalar(data):
    import numpy as np

    fast = Dir24_8()
    n = data.draw(st.integers(min_value=1, max_value=10))
    for i in range(n):
        addr = data.draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
        length = data.draw(st.integers(min_value=1, max_value=32))
        fast.insert(Prefix.from_address(addr, length), i + 1)
    probes = data.draw(st.lists(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        min_size=1, max_size=20))
    batch = fast.lookup_batch(np.array(probes, dtype=np.uint32))
    assert batch == [fast.lookup(p) for p in probes]


class TestUpdatePathRegressions:
    """Update-path regressions found while building live FIB churn."""

    def test_default_route_insert_remove_reinsert_under_traffic(self):
        """Removing /0 asks the trie what covers it (length <= -1):
        nothing does, so its entries must reset to empty -- including
        level-2 backgrounds -- and a reinsert must take again."""
        d = Dir24_8()
        d.insert(Prefix.parse("0.0.0.0/0"), "default")
        d.insert(Prefix.parse("10.1.0.0/16"), "specific")
        d.insert(Prefix.parse("10.1.2.128/25"), "long")
        assert d.lookup("99.0.0.1") == "default"
        assert d.lookup("10.1.2.1") == "specific"

        d.remove(Prefix.parse("0.0.0.0/0"))
        # Uncovered addresses miss; installed prefixes are undisturbed.
        assert d.lookup("99.0.0.1") is None
        assert d.lookup("10.1.2.1") == "specific"
        assert d.lookup("10.1.2.200") == "long"
        # TBL24 slots the default owned are genuinely empty again, not
        # stale: depth 0, value -1.
        assert int(d._tbl24[(99 << 16)]) == -1
        assert int(d._depth24[(99 << 16)]) == 0
        assert len(d) == 2

        # Reinsert mid-churn: covers everything the specifics do not.
        d.insert(Prefix.parse("0.0.0.0/0"), "default2")
        assert d.lookup("99.0.0.1") == "default2"
        assert d.lookup("10.1.2.200") == "long"
        assert len(d) == 3

    def test_default_route_resets_level2_background(self):
        """/0 removal must clear the *background* entries of a diverted
        slot while leaving the >24-bit owner alone."""
        d = Dir24_8()
        d.insert(Prefix.parse("0.0.0.0/0"), "default")
        d.insert(Prefix.parse("20.0.0.128/26"), "long")
        slot = 20 << 16
        assert int(d._tbl24[slot]) <= -2  # diverted
        d.remove(Prefix.parse("0.0.0.0/0"))
        assert d.lookup("20.0.0.1") is None     # background cleared
        assert d.lookup("20.0.0.129") == "long"  # owner intact
        assert d.lookup("21.0.0.1") is None

    def test_interleaved_short_long_churn_matches_trie(self):
        """Interleaved /20 + /28 insert/remove under one TBL24 range,
        checked against the shadow trie at every step."""
        d = Dir24_8()
        oracle = BinaryTrie()
        p20 = Prefix.parse("30.0.0.0/20")
        p28 = Prefix.parse("30.0.0.16/28")
        probes = [(30 << 24) | x for x in (0, 15, 16, 31, 200, 0xFFF)] \
            + [(31 << 24)]

        def check():
            for probe in probes:
                assert d.lookup(probe) == oracle.lookup(probe), hex(probe)

        script = [("i", p20, "short"), ("i", p28, "long"),
                  ("r", p20, None), ("i", p20, "short2"),
                  ("r", p28, None), ("i", p28, "long2"),
                  ("r", p20, None), ("r", p28, None)]
        for op, prefix, value in script:
            if op == "i":
                d.insert(prefix, value)
                oracle.insert(prefix, value)
            else:
                d.remove(prefix)
                oracle.remove(prefix)
            check()
        assert len(d) == 0

    def test_long_prefix_churn_reclaims_level2_tables(self):
        """Removing the last >24-bit prefix under a slot must un-divert
        it and recycle the 256-entry table; before the fix the pool only
        ever grew, leaking one table per insert/remove cycle."""
        d = Dir24_8()
        d.insert(Prefix.parse("40.0.0.0/16"), "cover")
        p28 = Prefix.parse("40.0.1.16/28")
        d.insert(p28, "long")
        d.remove(p28)
        baseline = d.memory_bytes()
        assert d._free_long, "level-2 table was not recycled"
        assert int(d._tbl24[(40 << 16) | 1]) >= -1  # un-diverted
        assert d.lookup("40.0.1.17") == "cover"
        for _ in range(50):
            d.insert(p28, "long")
            d.remove(p28)
        # Bounded: churn reuses the one recycled table, no leak.
        assert d.memory_bytes() == baseline
        assert len(d._long_values) == 1

    def test_differential_churn_fuzz(self):
        """Seeded insert/remove/replace storms vs a fresh rebuild and
        the trie oracle: lookups, size, memory and refcounts all agree."""
        import random as _random

        lengths = (8, 12, 16, 20, 22, 24, 25, 26, 28, 30, 32)
        for seed in range(5):
            rng = _random.Random(0xC0FFEE + seed)
            d = Dir24_8()
            oracle = BinaryTrie()
            live = {}
            # Confined address space so prefixes collide and nest.
            for step in range(300):
                length = rng.choice(lengths)
                addr = (50 << 24) | (rng.getrandbits(10) << 14) \
                    | rng.getrandbits(14)
                prefix = Prefix.from_address(addr, length)
                if prefix in live and rng.random() < 0.5:
                    d.remove(prefix)
                    oracle.remove(prefix)
                    del live[prefix]
                else:
                    value = "v%d" % rng.randrange(8)  # forces sharing
                    d.insert(prefix, value)
                    oracle.insert(prefix, value)
                    live[prefix] = value
            assert len(d) == len(live)
            # Fresh rebuild from the surviving routes.
            fresh = Dir24_8()
            for prefix, value in live.items():
                fresh.insert(prefix, value)
            probes = [(50 << 24) | rng.getrandbits(24)
                      for _ in range(400)]
            probes += [p.network.value for p in live]
            for probe in probes:
                expect = oracle.lookup(probe)
                assert d.lookup(probe) == expect, hex(probe)
                assert fresh.lookup(probe) == expect, hex(probe)
            # Churned table's memory stays within the fresh build plus
            # the recycled-table pool (no unbounded growth).
            slack = len(d._free_long) * (256 * 4 + 256)
            assert d.memory_bytes() <= fresh.memory_bytes() + slack
            # Value-slot refcounts: live slots sum to the route count,
            # freed slots are exactly the None entries.
            refs = sum(r for r in d._value_refs if r > 0)
            assert refs == len(live)
            freed = {i for i, v in enumerate(d._values) if v is None}
            assert freed == set(d._free_values)
