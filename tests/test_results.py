"""The unified result-object layer (repro.results)."""

import json

import pytest

from repro import calibration as cal
from repro.core import RouteBricksRouter
from repro.core.control import ClusterManager
from repro.perfmodel import max_loss_free_rate
from repro.results import RunResult
from repro.workloads import FixedSizeWorkload, WorkloadSpec


def _rate():
    return max_loss_free_rate(WorkloadSpec.fixed(64, app="forwarding"))


def _sim_report():
    workload = FixedSizeWorkload(packet_bytes=740, num_flows=8, seed=1)
    events = [(i * 1e-6, 0, 1, p)
              for i, p in enumerate(workload.packets(50))]
    return RouteBricksRouter(seed=1).simulate(events)


class TestRunResultProtocol:
    def test_every_result_type_is_a_run_result(self):
        assert isinstance(_rate(), RunResult)
        assert isinstance(_sim_report(), RunResult)
        throughput = RouteBricksRouter().max_throughput(
            WorkloadSpec.fixed(64))
        assert isinstance(throughput, RunResult)
        manager = ClusterManager()
        manager.add_node(0)
        manager.add_node(1)
        assert isinstance(manager.reprovision(), RunResult)

    def test_old_attribute_names_keep_working(self):
        rate = _rate()
        assert rate.rate_gbps > 0
        assert rate.bottleneck in ("cpu", "mem", "io", "nic")
        report = _sim_report()
        assert report.delivered_packets == 50
        assert report.delivery_ratio == 1.0

    def test_to_dict_is_json_serializable(self):
        for result in (_rate(), _sim_report()):
            data = result.to_dict()
            json.dumps(data)           # must not raise
            assert data["kind"] == type(result).__name__

    def test_histograms_collapse_to_quantiles(self):
        data = _sim_report().to_dict()
        latency = data["latency_usec"]
        assert set(latency) == {"count", "mean", "p50", "p95", "p99"}
        assert latency["count"] == 50

    def test_nested_dataclasses_and_named_objects_convert(self):
        data = _rate().to_dict()
        # The LoadVector dataclass inside the result becomes a plain dict.
        assert isinstance(data["loads"], dict)
        assert data["loads"]["cpu_cycles"] > 0
        # Dataclass values (AppCost) convert to their field dicts; plain
        # named objects reduce to their name.
        from repro.results import _convert
        assert _convert(cal.IP_ROUTING)["name"] == cal.IP_ROUTING.name

        class Named:
            name = "direct-vlb"
        assert _convert(Named()) == "direct-vlb"

    def test_summary_is_one_line_and_names_key_fields(self):
        for result in (_rate(), _sim_report()):
            line = result.summary()
            assert "\n" not in line
            assert line.startswith(type(result).__name__)
        assert "rate_gbps" in _rate().summary()
        assert str(_rate()) == _rate().summary()

    def test_cluster_throughput_summary(self):
        result = RouteBricksRouter().max_throughput(WorkloadSpec.fixed(64))
        assert "aggregate_gbps" in result.summary()
        assert "binding" in result.summary()

    def test_nested_results_recurse(self):
        router = RouteBricksRouter(seed=1)
        manager = ClusterManager()
        for port in range(4):
            manager.add_node(external_port=port)
        workload = FixedSizeWorkload(packet_bytes=740, num_flows=8, seed=1)
        events = [(i * 1e-6, 0, 1, p)
                  for i, p in enumerate(workload.packets(50))]
        from repro.faults import FaultSchedule
        report = router.simulate(
            events, faults=FaultSchedule().crash_node(at=20e-6, node=3),
            manager=manager, detection_latency_sec=10e-6)
        data = report.to_dict()
        json.dumps(data)
        assert data["convergence"][0]["kind"] == "ConvergenceRecord"
        assert data["convergence"][0]["event"] == "node_down"
