"""Tests for header codecs and checksums."""

import pytest

from repro.errors import PacketError
from repro.net import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    IPv4Address,
    IPv4Header,
    MACAddress,
    TCPHeader,
    UDPHeader,
    internet_checksum,
)
from repro.net.checksum import (
    incremental_checksum_update,
    ttl_decrement_checksum,
    verify_checksum,
)


class TestChecksum:
    def test_rfc1071_example(self):
        # RFC 1071 worked example: 0001 f203 f4f5 f6f7 -> checksum 220d.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_zero_data(self):
        assert internet_checksum(b"\x00" * 8) == 0xFFFF

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verify_packed_ipv4_header(self):
        header = IPv4Header(src=IPv4Address("1.2.3.4"),
                            dst=IPv4Address("5.6.7.8"), total_length=40)
        raw = header.pack()
        assert verify_checksum(raw)

    def test_incremental_update_matches_full_recompute(self):
        header = IPv4Header(src=IPv4Address("1.2.3.4"),
                            dst=IPv4Address("5.6.7.8"), ttl=64,
                            total_length=100)
        packed = header.pack()  # sets header.checksum
        updated = ttl_decrement_checksum(header.checksum, header.ttl,
                                         header.proto)
        header.ttl -= 1
        repacked = header.pack()  # full recompute
        assert updated == header.checksum
        assert verify_checksum(repacked)
        assert packed != repacked

    def test_incremental_update_identity(self):
        # Replacing a word with itself must leave the checksum unchanged.
        assert incremental_checksum_update(0x1234, 0xABCD, 0xABCD) == 0x1234

    def test_incremental_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            incremental_checksum_update(-1, 0, 0)
        with pytest.raises(ValueError):
            incremental_checksum_update(0, 0x10000, 0)
        with pytest.raises(ValueError):
            ttl_decrement_checksum(0, 0, 6)


class TestEthernetHeader:
    def test_pack_unpack_round_trip(self):
        header = EthernetHeader(dst=MACAddress("aa:bb:cc:dd:ee:ff"),
                                src=MACAddress("02:00:00:00:00:01"),
                                ethertype=ETHERTYPE_IPV4)
        again = EthernetHeader.unpack(header.pack())
        assert again == header

    def test_truncated(self):
        with pytest.raises(PacketError):
            EthernetHeader.unpack(b"\x00" * 13)


class TestIPv4Header:
    def test_pack_unpack_round_trip(self):
        header = IPv4Header(src=IPv4Address("10.0.0.1"),
                            dst=IPv4Address("10.0.0.2"),
                            ttl=17, proto=6, total_length=1500,
                            identification=0x1234)
        again = IPv4Header.unpack(header.pack())
        assert again == header

    def test_rejects_non_ipv4(self):
        raw = bytearray(IPv4Header().pack())
        raw[0] = (6 << 4) | 5  # version 6
        with pytest.raises(PacketError):
            IPv4Header.unpack(bytes(raw))

    def test_rejects_options(self):
        raw = bytearray(IPv4Header().pack())
        raw[0] = (4 << 4) | 6  # ihl 6
        with pytest.raises(PacketError):
            IPv4Header.unpack(bytes(raw))

    def test_truncated(self):
        with pytest.raises(PacketError):
            IPv4Header.unpack(b"\x45" + b"\x00" * 10)


class TestL4Headers:
    def test_udp_round_trip(self):
        header = UDPHeader(src_port=1234, dst_port=53, length=28)
        assert UDPHeader.unpack(header.pack()) == header

    def test_tcp_round_trip(self):
        header = TCPHeader(src_port=80, dst_port=54321, seq=0xDEADBEEF,
                           ack=42, flags=0x18, window=8192)
        assert TCPHeader.unpack(header.pack()) == header

    def test_udp_truncated(self):
        with pytest.raises(PacketError):
            UDPHeader.unpack(b"\x00" * 7)

    def test_tcp_truncated(self):
        with pytest.raises(PacketError):
            TCPHeader.unpack(b"\x00" * 19)
