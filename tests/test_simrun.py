"""Tests for the timed single-server forwarding simulation."""

import pytest

from repro.click.simrun import TimedForwardingRun
from repro.errors import ConfigurationError
from repro.hw import nehalem_server


@pytest.fixture
def run():
    return TimedForwardingRun(nehalem_server(num_ports=4, queues_per_port=2))


class TestTimedRuns:
    def test_below_saturation_loss_free(self, run):
        report = run.run(offered_bps=5e9, duration_sec=1e-3)
        assert report.loss_free
        assert report.achieved_gbps == pytest.approx(5.0, rel=0.02)

    def test_above_saturation_plateaus(self, run):
        report = run.run(offered_bps=14e9, duration_sec=2e-3)
        # Achieved rate plateaus near the model's 9.77 Gbps.
        assert report.achieved_gbps == pytest.approx(9.8, rel=0.05)
        assert not report.sustainable(max_backlog_packets=64)

    def test_empty_polls_fall_with_load(self, run):
        light = run.run(offered_bps=2e9, duration_sec=1e-3)
        heavy = run.run(offered_bps=9e9, duration_sec=1e-3)
        assert heavy.empty_polls < light.empty_polls

    def test_loss_free_search_matches_table1_row3(self, run):
        rate = run.find_loss_free_rate(tolerance_bps=0.3e9)
        assert rate / 1e9 == pytest.approx(9.77, rel=0.07)

    def test_no_batching_matches_table1_row1(self):
        run = TimedForwardingRun(
            nehalem_server(num_ports=4, queues_per_port=2), kp=1, kn=1)
        rate = run.find_loss_free_rate(low_bps=0.2e9, high_bps=5e9,
                                       tolerance_bps=0.1e9)
        assert rate / 1e9 == pytest.approx(1.46, rel=0.1)

    def test_cycles_charged_to_cores(self, run):
        run.server.reset_ledgers()
        run.run(offered_bps=5e9, duration_sec=1e-3)
        used = [core.cycles_used for core in run.server.cores]
        assert all(u > 0 for u in used)
        # Utilization below 1.0: the offered load is under saturation.
        for core in run.server.cores:
            assert core.utilization(1e-3) <= 1.01

    def test_bad_params(self, run):
        with pytest.raises(ConfigurationError):
            run.run(offered_bps=0)
        with pytest.raises(ConfigurationError):
            run.find_loss_free_rate(low_bps=5e9, high_bps=1e9)
        with pytest.raises(ConfigurationError):
            TimedForwardingRun(nehalem_server(num_ports=4, queues_per_port=2),
                               kp=0)

    def test_needs_enough_queues(self):
        # 8 cores but only 4 single-queue ports -> cannot pair 1:1.
        server = nehalem_server(num_ports=4, queues_per_port=1)
        with pytest.raises(ConfigurationError):
            TimedForwardingRun(server)
