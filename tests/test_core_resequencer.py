"""Tests for the output-node resequencer (the rejected Sec. 6.1 option)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.resequencer import Resequencer, added_latency_bound_sec
from repro.errors import ConfigurationError
from repro.net import Packet


def _packet(seq):
    packet = Packet.udp("1.0.0.1", "2.0.0.2", src_port=7)
    packet.flow_seq = seq
    return packet


class TestResequencer:
    def test_in_order_passthrough(self):
        out = []
        reseq = Resequencer(deliver=lambda p: out.append(p.flow_seq))
        for seq in (1, 2, 3):
            reseq.offer("f", _packet(seq), now=seq * 1e-6)
        assert out == [1, 2, 3]
        assert reseq.held == 0

    def test_reordered_arrivals_released_in_order(self):
        out = []
        reseq = Resequencer(deliver=lambda p: out.append(p.flow_seq))
        for i, seq in enumerate([1, 4, 2, 3, 5]):
            reseq.offer("f", _packet(seq), now=i * 1e-6)
        assert out == [1, 2, 3, 4, 5]
        assert reseq.held == 1  # p4 waited

    def test_gap_holds_until_fill(self):
        out = []
        reseq = Resequencer(deliver=lambda p: out.append(p.flow_seq))
        reseq.offer("f", _packet(2), now=0.0)
        assert out == []
        assert reseq.pending() == 1
        reseq.offer("f", _packet(1), now=1e-6)
        assert out == [1, 2]
        assert reseq.pending() == 0

    def test_timeout_flushes(self):
        out = []
        reseq = Resequencer(deliver=lambda p: out.append(p.flow_seq),
                            timeout_sec=1e-3)
        reseq.offer("f", _packet(3), now=0.0)
        assert reseq.expire(0.5e-3) == 0      # not yet
        assert reseq.expire(2e-3) == 1        # flushed
        assert out == [3]
        assert reseq.timed_out == 1

    def test_straggler_after_flush_delivered(self):
        out = []
        reseq = Resequencer(deliver=lambda p: out.append(p.flow_seq),
                            timeout_sec=1e-3)
        reseq.offer("f", _packet(2), now=0.0)
        reseq.expire(2e-3)
        reseq.offer("f", _packet(1), now=3e-3)  # late predecessor
        assert out == [2, 1]

    def test_flows_independent(self):
        out = []
        reseq = Resequencer(deliver=lambda p: out.append(p.flow_seq))
        reseq.offer("a", _packet(2), now=0.0)
        reseq.offer("b", _packet(1), now=0.0)
        assert out == [1]  # flow b unaffected by a's gap

    def test_buffer_cap_flushes(self):
        out = []
        reseq = Resequencer(deliver=lambda p: out.append(p.flow_seq),
                            max_buffer=3)
        for seq in (5, 4, 3):
            reseq.offer("f", _packet(seq), now=0.0)
        # Fourth held packet triggers a flush of the backlog.
        reseq.offer("f", _packet(7), now=0.0)
        assert out == [3, 4, 5]
        assert reseq.pending() == 1  # p7 still waiting for p6

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            Resequencer(deliver=lambda p: None, timeout_sec=0)
        with pytest.raises(ConfigurationError):
            Resequencer(deliver=lambda p: None, max_buffer=0)
        with pytest.raises(ConfigurationError):
            added_latency_bound_sec(0)

    @settings(max_examples=50, deadline=None)
    @given(st.permutations(list(range(1, 15))))
    def test_any_permutation_is_restored(self, seqs):
        """Property: without timeouts, any arrival order of a complete
        sequence is delivered fully sorted."""
        out = []
        reseq = Resequencer(deliver=lambda p: out.append(p.flow_seq))
        for i, seq in enumerate(seqs):
            reseq.offer("f", _packet(seq), now=i * 1e-9)
        assert out == sorted(seqs)
        assert reseq.pending() == 0


class TestRouterIntegration:
    def test_resequencing_eliminates_reordering(self):
        from repro.core import RouteBricksRouter
        from repro.workloads import FlowGenerator

        def gen():
            # Heavy enough to saturate the direct path and force balancing.
            return FlowGenerator(num_flows=60, packets_per_flow=240,
                                 packet_bytes=740, burst_size=8,
                                 burst_gap_sec=1e-4,
                                 intra_burst_gap_sec=4e-7, seed=1)

        plain = RouteBricksRouter(use_flowlets=False, seed=3).replay_pair(
            gen().timed_packets())
        reseq = RouteBricksRouter(use_flowlets=False, resequence=True,
                                  seed=3).replay_pair(gen().timed_packets())
        assert plain.reordered_fraction > 0.01
        assert reseq.reordered_fraction == 0.0
        assert reseq.delivered_packets == plain.delivered_packets
        assert reseq.resequencer_held > 0
