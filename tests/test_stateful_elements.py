"""Click stateful elements: scalar/batch equivalence, verdicts, config.

Every stateful element must behave identically whether packets arrive
one at a time or as a PacketBatch -- same pushes, same drops (and drop
causes), same flow-table end state.
"""

import pytest

from repro.click.config import default_registry, parse_config
from repro.click.element import Element
from repro.click.elements.stateful import (
    LB_BACKEND_ANNOTATION,
    NAT_PORT_ANNOTATION,
    ConnTrackFirewall,
    L4LoadBalancer,
    NetworkAddressTranslator,
    TokenBucketPolicer,
)
from repro.net import Packet
from repro.net.batch import PacketBatch

SEED = 20090917


class _Sink(Element):
    n_outputs = 0

    def __init__(self, name="sink"):
        super().__init__(name)
        self.seen = []

    def process(self, packet, port):
        self.seen.append(packet.packet_id)


def _stream(count=60, flows=7, seed=SEED):
    """A deterministic multi-flow packet list with timestamps."""
    import random
    rng = random.Random(seed)
    packets = []
    now = 0.0
    for _ in range(count):
        flow = rng.randrange(flows)
        length = rng.choice((64, 576, 1500))
        packet = Packet.udp("10.0.0.%d" % flow, "10.1.0.1", length=length,
                            src_port=5000 + flow)
        now += rng.expovariate(1e5)
        packet.arrival_time = now
        packets.append(packet)
    return packets


def _element(kind):
    if kind == "nat":
        return NetworkAddressTranslator()
    if kind == "firewall":
        return ConnTrackFirewall(establish_after=2, max_packets=5)
    if kind == "policer":
        return TokenBucketPolicer(rate_bps=4e6, burst_bytes=2000.0)
    return L4LoadBalancer(n=3)


def _run(kind, batched, packets):
    element = _element(kind)
    sinks = [element.connect_to(_Sink("sink%d" % i), output=i)
             for i in range(element.n_outputs)]
    if batched:
        element.receive_batch(PacketBatch.from_packets(packets))
    else:
        for packet in packets:
            element.receive(packet)
    counters = (element.packets_in, element.bytes_in,
                element.packets_out, element.packets_dropped)
    # packet_ids are globally fresh per run; compare stream *positions*.
    position = {p.packet_id: i for i, p in enumerate(packets)}
    return (counters, [[position[pid] for pid in s.seen] for s in sinks],
            element.flow_table.snapshot())


@pytest.mark.parametrize("kind", ["nat", "firewall", "policer", "lb"])
def test_scalar_batch_equivalence(kind):
    """Same pushes, drops, and end state on both paths -- including the
    packet *identities* each output saw."""
    scalar = _run(kind, False, _stream())
    batched = _run(kind, True, _stream())
    assert scalar == batched
    assert scalar[0][0] == 60          # everything arrived
    assert scalar[2]                   # and left state behind


class TestNat:
    def test_annotates_stable_external_port(self):
        element = NetworkAddressTranslator(pool_size=4096)
        sink = element.connect_to(_Sink())
        packets = _stream(count=20, flows=2)
        for packet in packets:
            element.receive(packet)
        assert len(sink.seen) == 20
        ports = {}
        for packet in packets:
            key = packet.five_tuple().as_ints()
            port = packet.annotations[NAT_PORT_ANNOTATION]
            assert 1024 <= port < 1024 + 4096
            ports.setdefault(key, port)
            assert ports[key] == port  # sticky per flow
        assert len(element.flow_table) == len(ports)

    def test_non_ip_bypasses_nat(self):
        element = NetworkAddressTranslator()
        sink = element.connect_to(_Sink())
        raw = Packet(length=64)
        element.receive(raw)
        assert sink.seen == [raw.packet_id]
        assert NAT_PORT_ANNOTATION not in raw.annotations
        assert len(element.flow_table) == 0


class TestFirewall:
    def test_closes_flows_after_budget(self):
        element = ConnTrackFirewall(establish_after=2, max_packets=5)
        sink = element.connect_to(_Sink())
        packets = _stream(count=20, flows=1)
        for packet in packets:
            element.receive(packet)
        # One flow, budget 5: packets 5..20 drop as conntrack_closed.
        assert len(sink.seen) == 4
        assert element.packets_dropped == 16

    def test_drop_cause_is_counted(self):
        from repro.obs.metrics import MetricsRegistry, use_registry
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            element = ConnTrackFirewall(establish_after=2, max_packets=3)
            element.connect_to(_Sink())
            for packet in _stream(count=10, flows=1):
                element.receive(packet)
        drops = registry.get("element_drops")
        assert drops.total() == element.packets_dropped > 0
        assert any("conntrack_closed" in key for key in drops.series())


class TestPolicer:
    def test_back_to_back_bursts_exceed(self):
        element = TokenBucketPolicer(rate_bps=8e3, burst_bytes=1600.0)
        sink = element.connect_to(_Sink())
        packets = _stream(count=10, flows=1)
        for packet in packets:
            packet.arrival_time = 0.0   # no refill between packets
            element.receive(packet)
        assert element.packets_dropped > 0
        assert len(sink.seen) == 10 - element.packets_dropped


class TestLoadBalancer:
    def test_flows_stick_to_backends(self):
        element = L4LoadBalancer(n=3)
        sinks = [element.connect_to(_Sink("s%d" % i), output=i)
                 for i in range(3)]
        packets = _stream(count=60, flows=12)
        for packet in packets:
            element.receive(packet)
        assert sum(len(s.seen) for s in sinks) == 60
        for packet in packets:
            backend = packet.annotations[LB_BACKEND_ANNOTATION]
            assert packet.packet_id in sinks[backend].seen
        probabilities = element.output_probabilities()
        assert len(probabilities) == 3
        assert sum(probabilities) == pytest.approx(1.0)

    def test_needs_at_least_one_backend(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            L4LoadBalancer(n=0)


class TestRegistry:
    def test_all_stateful_classes_parse(self):
        graph = parse_config(
            """
            fw :: ConnTrackFirewall(2, 100);
            nat :: NAT(4096);
            pol :: TokenBucketPolicer(8000000, 5000);
            lb :: L4LoadBalancer(2);
            fw -> nat -> pol -> lb;
            lb [0] -> Discard;
            lb [1] -> Discard;
            """, default_registry())
        names = {type(e).__name__ for e in graph.elements()}
        assert {"ConnTrackFirewall", "NetworkAddressTranslator",
                "TokenBucketPolicer", "L4LoadBalancer"} <= names

    def test_elements_declare_calibrated_costs(self):
        for kind in ("nat", "firewall", "policer", "lb"):
            element = _element(kind)
            cost = element.resource_cost(Packet.udp("10.0.0.1", "10.1.0.1"))
            assert cost.cpu_cycles > 0
            assert cost.mem_bytes > 0
