"""Tests for the parameter-sweep helpers."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.hw.presets import NEHALEM_NEXT_GEN
from repro.perfmodel.sweep import (
    app_sweep,
    batching_grid,
    bottleneck_crossover_bytes,
    headroom_matrix,
    size_sweep,
)


class TestSizeSweep:
    def test_rates_monotone(self):
        rows = size_sweep(cal.MINIMAL_FORWARDING)
        rates = [row["rate_gbps"] for row in rows]
        assert rates == sorted(rates)

    def test_bottleneck_moves_off_cpu(self):
        rows = size_sweep(cal.MINIMAL_FORWARDING)
        assert rows[0]["bottleneck"] == "cpu"
        assert rows[-1]["bottleneck"] in ("nic", "pcie")


class TestAppSweep:
    def test_ordering(self):
        results = app_sweep(64)
        assert results["forwarding"].rate_bps > results["routing"].rate_bps \
            > results["ipsec"].rate_bps


class TestBatchingGrid:
    def test_grid_shape_and_monotonicity(self):
        rows = batching_grid(kps=(1, 32), kns=(1, 16))
        assert len(rows) == 4
        by_config = {(r["kp"], r["kn"]): r["rate_gbps"] for r in rows}
        assert by_config[(32, 16)] > by_config[(32, 1)] > by_config[(1, 1)]
        assert by_config[(1, 16)] > by_config[(1, 1)]

    def test_corners_match_table1(self):
        rows = batching_grid(kps=(1, 32), kns=(1, 16))
        by_config = {(r["kp"], r["kn"]): r["rate_gbps"] for r in rows}
        assert by_config[(1, 1)] == pytest.approx(1.46, rel=0.01)
        assert by_config[(32, 16)] == pytest.approx(9.77, rel=0.01)


class TestCrossover:
    def test_forwarding_crossover_in_expected_range(self):
        crossover = bottleneck_crossover_bytes(cal.MINIMAL_FORWARDING)
        # Fig. 8: CPU-bound at 64-128 B, I/O-path bound from ~256 B.
        assert crossover is not None
        assert 128 < crossover <= 256

    def test_ipsec_always_cpu_bound(self):
        assert bottleneck_crossover_bytes(cal.IPSEC) is None

    def test_next_gen_crossover_smaller_or_equal(self):
        base = bottleneck_crossover_bytes(cal.MINIMAL_FORWARDING)
        fast = bottleneck_crossover_bytes(cal.MINIMAL_FORWARDING,
                                          spec=NEHALEM_NEXT_GEN)
        # 4x CPU with the NIC cap scaled 2x: the crossover moves earlier.
        assert fast is not None and base is not None
        assert fast <= base

    def test_bad_range(self):
        with pytest.raises(ConfigurationError):
            bottleneck_crossover_bytes(cal.IPSEC, lo=100, hi=100)


class TestHeadroomMatrix:
    def test_cpu_headroom_one_for_all_apps(self):
        rows = headroom_matrix(64)
        for row in rows:
            assert row["bottleneck"] == "cpu"
            assert row["cpu"] == pytest.approx(1.0, rel=1e-6)
            for component in ("memory", "io", "qpi"):
                assert row[component] > 1.0
