"""The unified WorkloadSpec accepted by every throughput API."""


import pytest

from repro import calibration as cal
from repro.core import RouteBricksRouter
from repro.errors import ConfigurationError
from repro.perfmodel import max_loss_free_rate, saturation_throughput
from repro.workloads import WorkloadSpec
from repro.workloads.matrices import uniform_matrix


class TestSpecConstruction:
    def test_fixed(self):
        spec = WorkloadSpec.fixed(64)
        assert spec.mean_packet_bytes == 64
        assert spec.app is cal.IP_ROUTING

    def test_imix_and_abilene_means(self):
        assert WorkloadSpec.imix().mean_packet_bytes == pytest.approx(
            353.83, rel=0.01)
        assert WorkloadSpec.abilene().mean_packet_bytes == pytest.approx(
            740, rel=0.01)

    def test_app_by_name_or_object(self):
        assert WorkloadSpec.fixed(64, app="ipsec").app is cal.IPSEC
        assert WorkloadSpec.fixed(64, app=cal.IPSEC).app is cal.IPSEC
        with pytest.raises(ConfigurationError):
            WorkloadSpec.fixed(64, app="quantum")

    def test_bad_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="bad", mix=((32, 1.0),))
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="bad", mix=((64, 0.0),))

    def test_with_matrix(self):
        matrix = uniform_matrix(4, 1e9)
        spec = WorkloadSpec.fixed(740).with_matrix(matrix)
        assert spec.matrix is matrix
        assert spec.name == "fixed-740B"


class TestUniformAcceptance:
    def test_perfmodel_accepts_spec(self):
        result = max_loss_free_rate(
            WorkloadSpec.fixed(64, app="forwarding"))
        assert result.rate_gbps > 0

    def test_router_accepts_spec(self):
        result = RouteBricksRouter().max_throughput(WorkloadSpec.fixed(64))
        assert result.aggregate_gbps == pytest.approx(12.0, rel=0.05)

    def test_spec_app_drives_the_model(self):
        routing = RouteBricksRouter().max_throughput(
            WorkloadSpec.fixed(64, app="routing"))
        ipsec = RouteBricksRouter().max_throughput(
            WorkloadSpec.fixed(64, app="ipsec"))
        assert ipsec.aggregate_bps < routing.aggregate_bps

    def test_simulate_accepts_spec_with_matrix(self):
        spec = WorkloadSpec.fixed(740, seed=3).with_matrix(
            uniform_matrix(4, 2e9))
        report = RouteBricksRouter(seed=3).simulate(spec, until=0.5e-3)
        assert report.offered_packets > 0
        # Nothing lost; the shortfall is packets in flight at the horizon.
        assert report.dropped_packets == 0
        assert report.delivery_ratio > 0.85

    def test_simulate_spec_needs_matrix_and_horizon(self):
        router = RouteBricksRouter()
        with pytest.raises(ConfigurationError):
            router.simulate(WorkloadSpec.fixed(740), until=1e-3)
        spec = WorkloadSpec.fixed(740).with_matrix(uniform_matrix(4, 1e9))
        with pytest.raises(ConfigurationError):
            router.simulate(spec)

    def test_simulate_spec_matrix_size_must_match(self):
        spec = WorkloadSpec.fixed(740).with_matrix(uniform_matrix(8, 1e9))
        with pytest.raises(ConfigurationError):
            RouteBricksRouter(num_nodes=4).simulate(spec, until=1e-3)


class TestRemovedLegacyForms:
    """The pre-WorkloadSpec positional signatures are gone for good:
    passing a bare app/packet-size now raises TypeError instead of a
    DeprecationWarning."""

    def test_old_positional_forms_raise(self):
        with pytest.raises(TypeError):
            max_loss_free_rate(cal.MINIMAL_FORWARDING, 64)
        with pytest.raises(TypeError):
            saturation_throughput(cal.MINIMAL_FORWARDING, 64)
        with pytest.raises(TypeError):
            RouteBricksRouter().max_throughput(64)

    def test_spec_forms_work(self):
        new = max_loss_free_rate(
            WorkloadSpec.fixed(64, app="forwarding"))
        new_cluster = RouteBricksRouter().max_throughput(
            WorkloadSpec.fixed(64))
        assert new.rate_bps > 0
        assert new_cluster.aggregate_bps > 0
