"""Tests for the hardware models."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hw import (
    NEHALEM,
    NEHALEM_NEXT_GEN,
    XEON_SHARED_BUS,
    Bus,
    Core,
    Nic,
    NicPort,
    Server,
    ServerSpec,
    nehalem_server,
    pcie_bytes_for_packet,
    xeon_server,
)
from repro.hw.dma import DmaEngine, pcie_transactions_for
from repro.net import Packet


class TestComponents:
    def test_core_charge_and_utilization(self):
        core = Core(core_id=0, socket_id=0, clock_hz=2.8e9)
        core.charge(1.4e9)
        assert core.utilization(1.0) == pytest.approx(0.5)
        core.reset()
        assert core.cycles_used == 0

    def test_core_rejects_negative(self):
        core = Core(core_id=0, socket_id=0, clock_hz=2.8e9)
        with pytest.raises(ValueError):
            core.charge(-1)
        with pytest.raises(ValueError):
            core.utilization(0)

    def test_bus_utilization(self):
        bus = Bus(name="m", capacity_bps=80e9)
        bus.charge(5e9)  # 5 GB = 40 Gb
        assert bus.utilization(1.0) == pytest.approx(0.5)

    def test_bad_configs(self):
        with pytest.raises(ConfigurationError):
            Core(core_id=0, socket_id=0, clock_hz=0)
        with pytest.raises(ConfigurationError):
            Bus(name="x", capacity_bps=0)


class TestServerSpec:
    def test_nehalem_shape(self):
        assert NEHALEM.total_cores == 8
        assert NEHALEM.cycles_per_second == pytest.approx(22.4e9)
        assert NEHALEM.max_ports == 4
        assert NEHALEM.max_input_bps == pytest.approx(24.6e9)

    def test_next_gen_scales(self):
        assert NEHALEM_NEXT_GEN.total_cores == 32
        assert NEHALEM_NEXT_GEN.cycles_per_second == pytest.approx(
            4 * NEHALEM.cycles_per_second)
        assert NEHALEM_NEXT_GEN.memory_bps == pytest.approx(
            2 * NEHALEM.memory_bps)

    def test_xeon_is_shared_bus(self):
        assert XEON_SHARED_BUS.shared_bus
        assert XEON_SHARED_BUS.cpi_factor > 1.0
        assert XEON_SHARED_BUS.cycles_per_second == pytest.approx(19.2e9)

    def test_shared_bus_requires_fsb(self):
        with pytest.raises(ConfigurationError):
            ServerSpec(name="bad", sockets=1, cores_per_socket=1,
                       clock_hz=1e9, memory_bps=1, memory_empirical_bps=1,
                       io_bps=1, io_empirical_bps=1, qpi_bps=1,
                       qpi_empirical_bps=1, pcie_bps=1,
                       pcie_empirical_bps=1, nic_slots=1,
                       shared_bus=True, fsb_bps=0)


class TestServer:
    def test_nehalem_server_assembly(self):
        server = nehalem_server()
        assert len(server.cores) == 8
        assert len(server.sockets) == 2
        assert len(server.nics) == 2
        assert len(server.ports) == 4
        assert server.ports[0].num_queues == 8

    def test_xeon_server_has_fsb(self):
        server = xeon_server()
        assert server.fsb is not None

    def test_too_many_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            Server(NEHALEM, num_ports=5, queues_per_port=1)

    def test_port_lookup(self):
        server = nehalem_server()
        assert server.port(2).port_id == 2
        with pytest.raises(ConfigurationError):
            server.port(9)

    def test_reset_ledgers(self):
        server = nehalem_server()
        server.cores[0].charge(100)
        server.io_bus.charge(100)
        server.reset_ledgers()
        assert server.cores[0].cycles_used == 0
        assert server.io_bus.bytes_moved == 0


class TestNic:
    def _port(self, queues=4):
        return NicPort(port_id=0, rate_bps=10e9, num_queues=queues)

    def test_rss_same_flow_same_queue(self):
        port = self._port()
        a = Packet.udp("10.0.0.1", "10.0.0.2", src_port=9, dst_port=80)
        b = Packet.udp("10.0.0.1", "10.0.0.2", src_port=9, dst_port=80)
        assert port.classify(a) == port.classify(b)

    def test_mac_steering(self):
        port = self._port(queues=4)
        port.mac_steering = True
        packet = Packet.udp("1.1.1.1", "2.2.2.2")
        packet.eth.dst = packet.eth.dst.with_node_id(3)
        assert port.classify(packet) == 3

    def test_receive_and_drain(self):
        port = self._port()
        packet = Packet.udp("1.1.1.1", "2.2.2.2")
        assert port.receive(packet)
        queued = sum(len(q) for q in port.rx_queues)
        assert queued == 1

    def test_ring_overflow_drops(self):
        port = NicPort(port_id=0, rate_bps=10e9, num_queues=1, ring_slots=2)
        for _ in range(3):
            port.receive(Packet.udp("1.1.1.1", "2.2.2.2"))
        assert port.total_rx_drops() == 1

    def test_transmit_bad_queue(self):
        port = self._port()
        with pytest.raises(ConfigurationError):
            port.transmit(Packet.udp("1.1.1.1", "2.2.2.2"), queue_id=9)

    def test_nic_capacity_check(self):
        nic = Nic(nic_id=0, ports=[self._port()], payload_limit_bps=12.3e9)
        nic.ports[0].rx_bytes = int(13e9 / 8)  # 13 Gb in one second
        with pytest.raises(CapacityError):
            nic.check_capacity(1.0)

    def test_nic_port_count_limits(self):
        with pytest.raises(ConfigurationError):
            Nic(nic_id=0, ports=[])
        with pytest.raises(ConfigurationError):
            Nic(nic_id=0, ports=[self._port(), self._port(), self._port()])

    def test_queue_sharing_detection(self):
        port = self._port()
        queue = port.rx_queues[0]
        queue.note_access(0)
        assert not queue.is_shared()
        queue.note_access(1)
        assert queue.is_shared()


class TestDma:
    def test_pcie_transactions(self):
        assert pcie_transactions_for(0) == 0
        assert pcie_transactions_for(64) == 1
        assert pcie_transactions_for(256) == 1
        assert pcie_transactions_for(257) == 2
        assert pcie_transactions_for(1024) == 4

    def test_pcie_bytes_batching_amortizes_headers(self):
        small_batch = pcie_bytes_for_packet(64, kn=1)
        big_batch = pcie_bytes_for_packet(64, kn=16)
        assert big_batch < small_batch

    def test_dma_transfer_time_scales(self):
        dma = DmaEngine()
        t64 = dma.transfer_time(64)
        t1024 = dma.transfer_time(1024)
        assert t64 == pytest.approx(2.56e-6)
        assert t1024 > t64

    def test_dma_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DmaEngine().transfer_time(0)
