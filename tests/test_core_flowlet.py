"""Tests for flowlet tracking and MAC encoding (Sec. 6.1)."""

import pytest

from repro.core import FlowletTable, decode_output_node, encode_output_node
from repro.core.mac_encoding import mac_trick_feasible, rx_queues_needed
from repro.errors import ConfigurationError
from repro.net import FiveTuple, IPv4Address, Packet


def _flow(i=0):
    return FiveTuple(IPv4Address(10 + i), IPv4Address(20 + i), 17, 1000 + i, 80)


class TestFlowletTable:
    def test_same_flowlet_same_path(self):
        table = FlowletTable(delta_sec=0.1)
        paths = [table.assign(_flow(), t, lambda p: True, lambda: 1)
                 for t in (0.0, 0.01, 0.02)]
        assert paths == [1, 1, 1]
        assert table.spills == 0

    def test_gap_allows_switch(self):
        table = FlowletTable(delta_sec=0.1)
        sequence = iter([1, 2])
        table.assign(_flow(), 0.0, lambda p: True, lambda: next(sequence))
        path = table.assign(_flow(), 0.2, lambda p: True,
                            lambda: next(sequence))
        assert path == 2
        assert table.switches == 1
        assert table.spills == 0

    def test_saturated_path_spills(self):
        table = FlowletTable(delta_sec=0.1)
        table.assign(_flow(), 0.0, lambda p: True, lambda: 1)
        path = table.assign(_flow(), 0.01, lambda p: False, lambda: 2)
        assert path == 2
        assert table.spills == 1

    def test_distinct_flows_tracked_separately(self):
        table = FlowletTable(delta_sec=0.1)
        table.assign(_flow(0), 0.0, lambda p: True, lambda: 1)
        table.assign(_flow(1), 0.0, lambda p: True, lambda: 2)
        assert len(table) == 2
        assert table.assign(_flow(0), 0.01, lambda p: True, lambda: 9) == 1
        assert table.assign(_flow(1), 0.01, lambda p: True, lambda: 9) == 2

    def test_time_cannot_run_backwards(self):
        table = FlowletTable()
        table.assign(_flow(), 1.0, lambda p: True, lambda: 1)
        with pytest.raises(ConfigurationError):
            table.assign(_flow(), 0.5, lambda p: True, lambda: 1)

    def test_eviction_caps_table(self):
        table = FlowletTable(delta_sec=0.01, max_entries=4)
        for i in range(10):
            table.assign(_flow(i), i * 1.0, lambda p: True, lambda: 1)
        assert len(table) <= 4
        assert table.evictions > 0

    def test_active_flows(self):
        table = FlowletTable(delta_sec=0.1)
        table.assign(_flow(0), 0.0, lambda p: True, lambda: 1)
        table.assign(_flow(1), 1.0, lambda p: True, lambda: 1)
        assert table.active_flows(1.05) == 1

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            FlowletTable(delta_sec=0)
        with pytest.raises(ConfigurationError):
            FlowletTable(max_entries=0)


class TestMacEncoding:
    def test_round_trip(self):
        packet = Packet.udp("1.1.1.1", "2.2.2.2")
        encode_output_node(packet, 3, max_nodes=4)
        assert decode_output_node(packet) == 3

    def test_out_of_range(self):
        packet = Packet.udp("1.1.1.1", "2.2.2.2")
        with pytest.raises(ConfigurationError):
            encode_output_node(packet, 4, max_nodes=4)

    def test_feasibility_limit(self):
        # Sec. 6.1: "not applicable to a router with more than 64 or so
        # external ports" with current NICs.
        assert mac_trick_feasible(64)
        assert not mac_trick_feasible(65)

    def test_rx_queues_needed(self):
        assert rx_queues_needed(4) == 4
        with pytest.raises(ConfigurationError):
            rx_queues_needed(0)
