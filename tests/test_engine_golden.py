"""Golden event-order test across the engine refactor.

``GOLDEN`` below is the (time, tag) execution order of a mixed
schedule / schedule_at / schedule_every / cancel workload recorded on
the pre-refactor engine (dataclass events, single heap).  The refactored
heap+wheel engine must replay it exactly -- same times, same tie-break
order, same number of executed events -- both when every timer goes
through the heap (``use_timer=False``) and when the homogeneous poll
chain rides the bucketed event wheel (``use_timer=True``).

The heartbeat interval (0.25) and poll step (0.125) are binary-exact
floats, so the schedule_every grid fix cannot shift any time in this
workload: any divergence here is a real ordering regression.
"""

from repro.simnet import Simulator

#: Captured on the pre-refactor engine (see module docstring).
GOLDEN = [
    (0.0, "poll0"), (0.125, "poll1"), (0.25, "beat"), (0.25, "poll2"),
    (0.375, "poll3"), (0.5, "a"), (0.5, "b"), (0.5, "c"), (0.5, "beat"),
    (0.5, "poll4"), (0.625, "killer"), (0.625, "poll5"), (0.75, "beat"),
    (0.75, "poll6"), (0.875, "poll7"), (1.0, "nest"), (1.0, "beat"),
    (1.0, "poll8"), (1.0625, "stop-beat"), (1.0625, "timer-child"),
    (1.125, "nested-child"), (1.125, "poll9"), (1.25, "poll10"),
    (1.375, "poll11"),
]

#: Total events executed, including the cancelled heartbeat's final
#: no-op tick at 1.25 and excluding the two cancelled one-shots.
GOLDEN_EVENTS_RUN = 25

GOLDEN_FINAL_NOW = 2.0


def drive(sim, log, use_timer=False):
    """The recorded workload: periodic beats, a self-rescheduling poll
    chain, tie-breaking one-shots, pre-run and mid-run cancellations,
    and nested scheduling from inside a callback."""
    timer = (sim.schedule_timer if use_timer
             else (lambda d, cb: sim.schedule(d, cb)))

    def note(tag):
        log.append((sim.now, tag))

    beat = sim.schedule_every(0.25, lambda: note("beat"))
    n = [0]

    def poll():
        note("poll%d" % n[0])
        n[0] += 1
        if n[0] < 12:
            timer(0.125, poll)

    timer(0.0, poll)
    sim.schedule(0.5, lambda: note("a"))
    sim.schedule(0.5, lambda: note("b"))
    sim.schedule_at(0.5, lambda: note("c"))
    dead = sim.schedule(0.375, lambda: note("dead"))
    dead.cancel()
    victim = sim.schedule(0.75, lambda: note("victim"))

    def killer():
        note("killer")
        victim.cancel()

    sim.schedule(0.625, killer)

    def nest():
        note("nest")
        sim.schedule(0.125, lambda: note("nested-child"))
        timer(0.0625, lambda: note("timer-child"))

    sim.schedule(1.0, nest)

    def stop():
        note("stop-beat")
        beat.cancel()

    sim.schedule(1.0625, stop)
    return beat


class TestGoldenOrder:
    def test_heap_path_replays_golden(self):
        sim = Simulator()
        log = []
        drive(sim, log, use_timer=False)
        sim.run(until=2.0)
        assert log == GOLDEN
        assert sim.now == GOLDEN_FINAL_NOW
        assert sim.events_run == GOLDEN_EVENTS_RUN

    def test_wheel_path_replays_golden(self):
        sim = Simulator()
        log = []
        drive(sim, log, use_timer=True)
        sim.run(until=2.0)
        assert log == GOLDEN
        assert sim.now == GOLDEN_FINAL_NOW
        assert sim.events_run == GOLDEN_EVENTS_RUN
        # The poll chain really went through the wheel, not the heap.
        assert sim._quantum == 0.125

    def test_step_by_step_matches_run(self):
        """step() must produce the same order as the batch run loops."""
        sim = Simulator()
        log = []
        drive(sim, log, use_timer=True)
        while sim.peek_time() is not None and sim.peek_time() <= 2.0:
            assert sim.step()
        assert log == GOLDEN
        assert sim.events_run == GOLDEN_EVENTS_RUN

    def test_epoch_sliced_run_matches_batch(self):
        """Repeated run(until=slice) calls -- the parallel runner's epoch
        protocol -- must replay the golden order exactly, including when
        slice boundaries land on event times (boundary events execute in
        the epoch that reaches them first, i.e. run(until=t) is
        inclusive)."""
        for epoch in (0.0625, 0.1, 0.125, 0.33, 1.0):
            sim = Simulator()
            log = []
            drive(sim, log, use_timer=True)
            t = 0.0
            while t < GOLDEN_FINAL_NOW:
                t = min(t + epoch, GOLDEN_FINAL_NOW)
                sim.run(until=t)
            assert log == GOLDEN, "epoch=%r diverged" % epoch
            assert sim.now == GOLDEN_FINAL_NOW
            assert sim.events_run == GOLDEN_EVENTS_RUN
