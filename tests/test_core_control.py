"""Tests for the cluster control plane (membership + FIB distribution)."""

import pytest

from repro.core.control import ClusterManager
from repro.errors import ConfigurationError, TopologyError
from repro.net import IPv4Address


@pytest.fixture
def cluster():
    manager = ClusterManager()
    for port in range(4):
        manager.add_node(external_port=port)
    manager.announce("10.0.0.0/16", 0)
    manager.announce("10.1.0.0/16", 1)
    manager.announce("10.2.0.0/16", 2)
    manager.announce("10.3.0.0/16", 3)
    manager.push_fibs()
    return manager


class TestMembership:
    def test_add_nodes(self, cluster):
        assert cluster.num_nodes == 4
        assert cluster.nodes() == [0, 1, 2, 3]

    def test_duplicate_port_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.add_node(external_port=2)

    def test_mesh_links_complete(self, cluster):
        links = cluster.mesh_links()
        assert len(links) == 12
        assert (0, 0) not in links

    def test_internal_link_rate_falls_with_growth(self, cluster):
        before = cluster.internal_link_rate_bps()
        cluster.add_node(external_port=9)
        assert cluster.internal_link_rate_bps() < before

    def test_capacity_grows_linearly(self, cluster):
        assert cluster.capacity_bps() == 40e9
        cluster.add_node(external_port=9)
        assert cluster.capacity_bps() == 50e9

    def test_remove_node(self, cluster):
        cluster.remove_node(3)
        assert cluster.num_nodes == 3
        with pytest.raises(ConfigurationError):
            cluster.remove_node(3)

    def test_tiny_mesh_link_rate_rejected(self):
        manager = ClusterManager()
        manager.add_node(0)
        with pytest.raises(TopologyError):
            manager.internal_link_rate_bps()


class TestFibDistribution:
    def test_all_nodes_get_identical_answers(self, cluster):
        probes = [IPv4Address("10.%d.9.9" % i) for i in range(4)]
        assert cluster.check_consistency(probes)
        for node in cluster.nodes():
            fib = cluster.fib_of(node)
            assert fib.lookup("10.2.5.5").port == 2

    def test_fib_routes_point_at_node_ids(self, cluster):
        fib = cluster.fib_of(0)
        # Port 3's owner is node 3 in this setup.
        assert fib.lookup("10.3.1.1").port == 3

    def test_announce_bumps_version_and_marks_stale(self, cluster):
        assert cluster.stale_nodes() == []
        cluster.announce("172.16.0.0/16", 2)
        assert cluster.stale_nodes() == [0, 1, 2, 3]
        assert not cluster.check_consistency([IPv4Address("172.16.1.1")])
        cluster.push_fibs()
        assert cluster.stale_nodes() == []
        assert cluster.check_consistency([IPv4Address("172.16.1.1")])

    def test_withdraw(self, cluster):
        cluster.withdraw("10.3.0.0/16")
        cluster.push_fibs()
        assert cluster.fib_of(0).lookup("10.3.1.1") is None
        with pytest.raises(ConfigurationError):
            cluster.withdraw("10.3.0.0/16")

    def test_orphaned_routes_excluded(self, cluster):
        cluster.remove_node(3)
        cluster.push_fibs()
        # Port 3's prefix has no owner: not in the FIB.
        assert cluster.fib_of(0).lookup("10.3.1.1") is None

    def test_announce_unowned_port_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.announce("192.168.0.0/16", 77)

    def test_fib_before_push_rejected(self):
        manager = ClusterManager()
        manager.add_node(0)
        with pytest.raises(ConfigurationError):
            manager.fib_of(0)


class TestGrowWhileRouting:
    def test_add_server_add_port_story(self, cluster):
        """The Sec. 2 extensibility claim as a scenario: add a server,
        announce its port's prefixes, push, and the whole cluster routes
        to it."""
        new_node = cluster.add_node(external_port=4)
        cluster.announce("10.4.0.0/16", 4)
        cluster.push_fibs()
        probes = [IPv4Address("10.4.2.2")]
        assert cluster.check_consistency(probes)
        for node in cluster.nodes():
            assert cluster.fib_of(node).lookup("10.4.2.2").port == new_node
        assert cluster.capacity_bps() == 50e9
