"""Tests for the cluster control plane (membership + FIB distribution)."""

import pytest

from repro.core.control import ClusterManager
from repro.errors import ConfigurationError, TopologyError
from repro.net import IPv4Address


@pytest.fixture
def cluster():
    manager = ClusterManager()
    for port in range(4):
        manager.add_node(external_port=port)
    manager.announce("10.0.0.0/16", 0)
    manager.announce("10.1.0.0/16", 1)
    manager.announce("10.2.0.0/16", 2)
    manager.announce("10.3.0.0/16", 3)
    manager.push_fibs()
    return manager


class TestMembership:
    def test_add_nodes(self, cluster):
        assert cluster.num_nodes == 4
        assert cluster.nodes() == [0, 1, 2, 3]

    def test_duplicate_port_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.add_node(external_port=2)

    def test_mesh_links_complete(self, cluster):
        links = cluster.mesh_links()
        assert len(links) == 12
        assert (0, 0) not in links

    def test_internal_link_rate_falls_with_growth(self, cluster):
        before = cluster.internal_link_rate_bps()
        cluster.add_node(external_port=9)
        assert cluster.internal_link_rate_bps() < before

    def test_capacity_grows_linearly(self, cluster):
        assert cluster.capacity_bps() == 40e9
        cluster.add_node(external_port=9)
        assert cluster.capacity_bps() == 50e9

    def test_remove_node(self, cluster):
        cluster.remove_node(3)
        assert cluster.num_nodes == 3
        with pytest.raises(ConfigurationError):
            cluster.remove_node(3)

    def test_tiny_mesh_link_rate_rejected(self):
        manager = ClusterManager()
        manager.add_node(0)
        with pytest.raises(TopologyError):
            manager.internal_link_rate_bps()


class TestFibDistribution:
    def test_all_nodes_get_identical_answers(self, cluster):
        probes = [IPv4Address("10.%d.9.9" % i) for i in range(4)]
        assert cluster.check_consistency(probes)
        for node in cluster.nodes():
            fib = cluster.fib_of(node)
            assert fib.lookup("10.2.5.5").port == 2

    def test_fib_routes_point_at_node_ids(self, cluster):
        fib = cluster.fib_of(0)
        # Port 3's owner is node 3 in this setup.
        assert fib.lookup("10.3.1.1").port == 3

    def test_announce_bumps_version_and_marks_stale(self, cluster):
        assert cluster.stale_nodes() == []
        cluster.announce("172.16.0.0/16", 2)
        assert cluster.stale_nodes() == [0, 1, 2, 3]
        assert not cluster.check_consistency([IPv4Address("172.16.1.1")])
        cluster.push_fibs()
        assert cluster.stale_nodes() == []
        assert cluster.check_consistency([IPv4Address("172.16.1.1")])

    def test_withdraw(self, cluster):
        cluster.withdraw("10.3.0.0/16")
        cluster.push_fibs()
        assert cluster.fib_of(0).lookup("10.3.1.1") is None
        with pytest.raises(ConfigurationError):
            cluster.withdraw("10.3.0.0/16")

    def test_orphaned_routes_excluded(self, cluster):
        cluster.remove_node(3)
        cluster.push_fibs()
        # Port 3's prefix has no owner: not in the FIB.
        assert cluster.fib_of(0).lookup("10.3.1.1") is None

    def test_announce_unowned_port_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.announce("192.168.0.0/16", 77)

    def test_fib_before_push_rejected(self):
        manager = ClusterManager()
        manager.add_node(0)
        with pytest.raises(ConfigurationError):
            manager.fib_of(0)


class TestHealthReaction:
    def test_mark_failed_pulls_routes_and_marks_stale(self, cluster):
        cluster.mark_failed(3)
        assert cluster.failed_nodes() == [3]
        assert cluster.live_nodes() == [0, 1, 2]
        # The bump makes every live FIB stale; node 3 is dead, not stale.
        assert cluster.stale_nodes() == [0, 1, 2]
        cluster.push_fibs()
        assert cluster.stale_nodes() == []
        # The dead node's prefix is withheld from the compiled FIB.
        assert cluster.fib_of(0).lookup("10.3.1.1") is None
        assert cluster.fib_of(0).lookup("10.2.1.1").port == 2

    def test_mark_failed_idempotent(self, cluster):
        cluster.mark_failed(3)
        version = cluster.rib_version
        cluster.mark_failed(3)
        assert cluster.rib_version == version

    def test_unknown_node_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.mark_failed(9)
        with pytest.raises(ConfigurationError):
            cluster.mark_recovered(9)

    def test_recovery_restores_routes_after_push(self, cluster):
        cluster.handle_node_failure(3)
        assert cluster.fib_of(0).lookup("10.3.1.1") is None
        update = cluster.handle_node_recovery(3)
        assert update.live_nodes == 4
        assert cluster.fib_of(0).lookup("10.3.1.1").port == 3
        # The rebooted node got a fresh table too.
        assert cluster.fib_of(3).lookup("10.0.1.1").port == 0
        assert cluster.stale_nodes() == []

    def test_failure_shrinks_capacity_and_raises_link_requirement(
            self, cluster):
        before = cluster.reprovision()
        after = cluster.handle_node_failure(3, push=False)
        assert after.capacity_bps == before.capacity_bps - 10e9
        assert after.internal_link_rate_bps > before.internal_link_rate_bps
        assert after.failed_nodes == 1

    def test_consistency_ignores_dead_nodes(self, cluster):
        cluster.handle_node_failure(3)
        probes = [IPv4Address("10.%d.9.9" % i) for i in range(3)]
        assert cluster.check_consistency(probes)

    def test_capacity_counts_live_only(self, cluster):
        assert cluster.capacity_bps() == 40e9
        cluster.mark_failed(1)
        assert cluster.capacity_bps() == 30e9
        cluster.mark_recovered(1)
        assert cluster.capacity_bps() == 40e9

    def test_reprovision_single_survivor_has_no_mesh(self):
        manager = ClusterManager()
        manager.add_node(0)
        manager.add_node(1)
        manager.mark_failed(1)
        update = manager.reprovision()
        assert update.live_nodes == 1
        assert update.internal_link_rate_bps != update.internal_link_rate_bps  # NaN


class TestRemoveStalePushInterplay:
    def test_remove_node_then_rehome_prefix(self, cluster):
        cluster.remove_node(2)
        # Port 2's prefix is orphaned; re-home it to node 0's port and
        # push -- every survivor then routes it to node 0.
        cluster.announce("10.2.0.0/16", 0)
        cluster.push_fibs()
        assert cluster.stale_nodes() == []
        for node in cluster.nodes():
            route = cluster.fib_of(node).lookup("10.2.5.5")
            assert route is not None and route.port == 0

    def test_push_returns_current_version(self, cluster):
        version = cluster.push_fibs()
        assert version == cluster.rib_version
        cluster.announce("172.16.0.0/16", 1)
        assert cluster.push_fibs() == version + 1

    def test_dead_node_rejoins_stale_then_syncs(self, cluster):
        cluster.mark_failed(2)
        cluster.push_fibs()
        cluster.announce("172.16.0.0/16", 1)   # changes while node 2 is out
        cluster.push_fibs()
        cluster.mark_recovered(2)
        # Rebooted with no FIB: stale until the next push.
        assert 2 in cluster.stale_nodes()
        with pytest.raises(ConfigurationError):
            cluster.fib_of(2)
        cluster.push_fibs()
        assert cluster.stale_nodes() == []
        assert cluster.fib_of(2).lookup("172.16.1.1").port == 1


class TestGrowWhileRouting:
    def test_add_server_add_port_story(self, cluster):
        """The Sec. 2 extensibility claim as a scenario: add a server,
        announce its port's prefixes, push, and the whole cluster routes
        to it."""
        new_node = cluster.add_node(external_port=4)
        cluster.announce("10.4.0.0/16", 4)
        cluster.push_fibs()
        probes = [IPv4Address("10.4.2.2")]
        assert cluster.check_consistency(probes)
        for node in cluster.nodes():
            assert cluster.fib_of(node).lookup("10.4.2.2").port == new_node
        assert cluster.capacity_bps() == 50e9


class TestRemoveNodeStaleness:
    def test_remove_node_marks_peers_stale(self, cluster):
        """Removing a node changes the compiled FIB (its routes drop
        out), so previously-pushed peers must read as stale; before the
        fix the version never moved and check_consistency stayed True
        while every peer kept routing to the ghost."""
        assert cluster.stale_nodes() == []
        version = cluster.rib_version
        cluster.remove_node(3)
        assert cluster.rib_version > version
        assert cluster.stale_nodes() == [0, 1, 2]
        # Peers still hold the ghost route until the next push.
        assert cluster.fib_of(0).lookup("10.3.1.1").port == 3
        assert not cluster.check_consistency([IPv4Address("10.3.1.1")])
        cluster.push_fibs()
        assert cluster.stale_nodes() == []
        assert cluster.fib_of(0).lookup("10.3.1.1") is None
        assert cluster.check_consistency([IPv4Address("10.3.1.1")])


class TestDeltaJournal:
    def test_sync_is_incremental_after_first_push(self, cluster):
        cluster.announce("172.16.0.0/16", 1)
        result = cluster.sync_node(0)
        assert not result.rebuilt
        assert result.ops_applied == 1
        assert cluster.fib_of(0).lookup("172.16.1.1").port == 1

    def test_first_sync_is_a_rebuild(self, cluster):
        node = cluster.add_node(external_port=4)
        result = cluster.sync_node(node)
        assert result.rebuilt
        assert result.ops_applied == len(cluster.fib_of(node))

    def test_withdraw_streams_a_delete(self, cluster):
        cluster.withdraw("10.2.0.0/16")
        result = cluster.sync_node(1)
        assert not result.rebuilt and result.ops_applied == 1
        assert cluster.fib_of(1).lookup("10.2.1.1") is None

    def test_dataplane_sees_updates_live(self, cluster):
        """The synced table is mutated in place: a holder of the FIB
        reference observes the new routes without re-fetching."""
        fib = cluster.fib_of(2)
        cluster.announce("172.16.0.0/16", 0)
        cluster.sync_node(2)
        assert fib.lookup("172.16.1.1").port == 0

    def test_fail_recover_streams_deltas(self, cluster):
        cluster.mark_failed(3)
        for node in (0, 1, 2):
            result = cluster.sync_node(node)
            assert not result.rebuilt
            assert cluster.fib_of(node).lookup("10.3.1.1") is None
        cluster.mark_recovered(3)
        result = cluster.sync_node(0)
        assert not result.rebuilt
        assert cluster.fib_of(0).lookup("10.3.1.1").port == 3

    def test_journal_window_forces_rebuild(self, cluster, monkeypatch):
        """A node whose FIB predates the trimmed journal window gets a
        full rebuild, and the journal never splits one version."""
        from repro.core import control as control_mod

        monkeypatch.setattr(control_mod, "MAX_JOURNAL_ENTRIES", 8)
        for i in range(12):
            cluster.announce("172.16.%d.0/24" % i, i % 4)
        assert cluster.fib_deltas(cluster.rib_version) == []
        # Node 0's pushed version fell behind the floor.
        assert cluster.fib_deltas(0) is None
        result = cluster.sync_node(0)
        assert result.rebuilt
        assert cluster.fib_of(0).lookup("172.16.11.1").port == 3
        # The surviving journal still replays cleanly for a mid-gap
        # version at or above the floor.
        floor = cluster._journal_floor
        deltas = cluster.fib_deltas(floor)
        assert deltas is not None
        assert all(d.version > floor for d in deltas)

    def test_incremental_matches_rebuild(self, cluster):
        """After mixed churn, an incrementally synced node answers
        exactly like a freshly rebuilt one."""
        cluster.announce("172.16.0.0/16", 0)
        cluster.withdraw("10.1.0.0/16")
        cluster.announce("10.0.0.0/16", 2)      # moved
        cluster.mark_failed(3)
        cluster.sync_node(0)
        reference = cluster.build_fib()
        probes = ["10.0.1.1", "10.1.1.1", "10.2.1.1", "10.3.1.1",
                  "172.16.1.1", "9.9.9.9"]
        for probe in probes:
            mine = cluster.fib_of(0).lookup(probe)
            theirs = reference.lookup(probe)
            assert (mine is None) == (theirs is None)
            if mine is not None:
                assert mine.port == theirs.port
