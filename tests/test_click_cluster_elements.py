"""Tests for the two RB4 Click elements (VLBIngress, VLBTransit)."""

import pytest

from repro.click import CounterElement, Discard
from repro.click.elements.cluster import VLBIngress, VLBTransit
from repro.errors import ConfigurationError
from repro.net import IPv4Address, Packet
from repro.routing import Route, RoutingTable


def _table(num_nodes=4):
    table = RoutingTable()
    for node in range(num_nodes):
        table.add_route("10.%d.0.0/16" % node,
                        Route(port=node, next_hop=IPv4Address("10.%d.0.1" % node)))
    return table


def _wire(element):
    sinks = []
    for i in range(element.n_outputs):
        sink = CounterElement(name="%s-out%d" % (element.name, i))
        sink.connect_to(Discard(name="%s-d%d" % (element.name, i)))
        element.connect_to(sink, output=i)
        sinks.append(sink)
    return sinks


class TestVLBIngress:
    def test_local_delivery(self):
        ingress = VLBIngress(_table(), self_node=1, num_nodes=4)
        sinks = _wire(ingress)
        ingress.receive(Packet.udp("1.1.1.1", "10.1.5.5"))
        assert sinks[1].count == 1  # own output node

    def test_direct_path_when_links_free(self):
        ingress = VLBIngress(_table(), self_node=0, num_nodes=4)
        sinks = _wire(ingress)
        ingress.receive(Packet.udp("1.1.1.1", "10.3.5.5"))
        assert sinks[3].count == 1

    def test_mac_encodes_output_node(self):
        ingress = VLBIngress(_table(), self_node=0, num_nodes=4)
        _wire(ingress)
        packet = Packet.udp("1.1.1.1", "10.2.9.9")
        ingress.receive(packet)
        assert packet.eth.dst.node_id() == 2

    def test_busy_direct_link_detours(self):
        busy = {3}
        ingress = VLBIngress(_table(), self_node=0, num_nodes=4,
                             link_available=lambda n: n not in busy,
                             use_flowlets=False)
        sinks = _wire(ingress)
        for _ in range(20):
            ingress.receive(Packet.udp("1.1.1.1", "10.3.5.5",
                                       src_port=1234))
        assert sinks[3].count == 0
        assert sinks[1].count + sinks[2].count == 20

    def test_flowlets_pin_path(self):
        busy = {2}
        ingress = VLBIngress(_table(), self_node=0, num_nodes=4,
                             link_available=lambda n: n not in busy,
                             use_flowlets=True, seed=1)
        sinks = _wire(ingress)
        for i in range(10):
            ingress.now = i * 1e-6
            ingress.receive(Packet.udp("1.1.1.1", "10.2.9.9", src_port=5))
        detour_counts = [sinks[i].count for i in (1, 3)]
        assert max(detour_counts) == 10  # all packets took one pinned path

    def test_routing_miss_goes_to_last_output(self):
        ingress = VLBIngress(_table(), self_node=0, num_nodes=4)
        sinks = _wire(ingress)
        ingress.receive(Packet.udp("1.1.1.1", "99.9.9.9"))
        assert sinks[4].count == 1
        assert ingress.misses == 1

    def test_cycle_cost_includes_flowlet_overhead(self):
        with_fl = VLBIngress(_table(), self_node=0, num_nodes=4,
                             use_flowlets=True)
        without = VLBIngress(_table(), self_node=0, num_nodes=4,
                             use_flowlets=False, name="nofl")
        probe = Packet.udp("1.1.1.1", "10.1.0.1")
        assert (with_fl.resource_cost(probe).cpu_cycles
                > without.resource_cost(probe).cpu_cycles)

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            VLBIngress(_table(), self_node=5, num_nodes=4)
        with pytest.raises(ConfigurationError):
            VLBIngress(_table(), self_node=0, num_nodes=1)


class TestVLBTransit:
    def test_local_delivery(self):
        transit = VLBTransit(self_node=2, num_nodes=4)
        sinks = _wire(transit)
        packet = Packet.udp("1.1.1.1", "10.2.5.5")
        packet.eth.dst = packet.eth.dst.with_node_id(2)
        transit.receive(packet)
        assert sinks[2].count == 1
        assert transit.delivered == 1

    def test_forwarding_by_mac_only(self):
        transit = VLBTransit(self_node=1, num_nodes=4)
        sinks = _wire(transit)
        packet = Packet.udp("1.1.1.1", "10.3.5.5")
        packet.eth.dst = packet.eth.dst.with_node_id(3)
        # Corrupt the IP destination: transit must not look at it.
        packet.ip.dst = IPv4Address("99.99.99.99")
        transit.receive(packet)
        assert sinks[3].count == 1
        assert transit.forwarded == 1

    def test_zero_cycle_cost(self):
        # The whole point of the MAC trick: no CPU header processing.
        transit = VLBTransit(self_node=0, num_nodes=4)
        cost = transit.resource_cost(Packet.udp("1.1.1.1", "2.2.2.2"))
        assert cost.cpu_cycles == 0.0

    def test_out_of_range_node_dropped(self):
        transit = VLBTransit(self_node=0, num_nodes=2)
        _wire(transit)
        packet = Packet.udp("1.1.1.1", "2.2.2.2")
        packet.eth.dst = packet.eth.dst.with_node_id(7)
        transit.receive(packet)
        assert transit.packets_dropped == 1


class TestTwoElementCluster:
    def test_ingress_plus_transit_form_a_path(self):
        """Chain the two elements as RB4 does: ingress at node 0, transit
        at node 3, local delivery at node 3."""
        ingress = VLBIngress(_table(), self_node=0, num_nodes=4,
                             use_flowlets=False, seed=2,
                             link_available=lambda n: n == 1)  # force detour
        transit = VLBTransit(self_node=1, num_nodes=4)
        egress = VLBTransit(self_node=3, num_nodes=4, name="egress")
        # ingress output 1 -> transit at node 1; transit output 3 -> node 3.
        for i in range(5):
            ingress.connect_to(Discard(name="i-d%d" % i), output=i) \
                if i not in (1,) else ingress.connect_to(transit, output=1)
        for i in range(4):
            if i == 3:
                transit.connect_to(egress, output=3)
            else:
                transit.connect_to(Discard(name="t-d%d" % i), output=i)
        sinks = _wire(egress)
        packet = Packet.udp("1.1.1.1", "10.3.7.7")
        ingress.receive(packet)
        assert transit.forwarded == 1
        assert egress.delivered == 1
        assert sinks[3].count == 1
