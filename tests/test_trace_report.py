"""Tests for trace characterization."""

import pytest

from repro import calibration as cal
from repro.analysis.trace_report import characterize, characterize_pcap
from repro.errors import ConfigurationError
from repro.net import Packet
from repro.workloads import AbileneTrace, FlowGenerator
from repro.workloads.imix import ImixWorkload
from repro.workloads.pcapio import save_trace


class TestCharacterize:
    def test_basic_counts(self):
        pairs = [(i * 1e-5, Packet.udp("10.0.0.1", "10.0.0.2", length=100))
                 for i in range(10)]
        report = characterize(pairs)
        assert report.packets == 10
        assert report.total_bytes == 1000
        assert report.mean_bytes == 100
        assert report.flow_count == 1
        assert report.mean_flow_packets == 10

    def test_rate(self):
        pairs = [(i * 1e-3, Packet.udp("1.1.1.1", "2.2.2.2", length=125))
                 for i in range(11)]
        report = characterize(pairs)
        # 10 ms window carrying 11 * 1000 bits.
        assert report.rate_bps == pytest.approx(1.1e6, rel=0.01)

    def test_abilene_mean_matches_calibration(self):
        trace = AbileneTrace(seed=1)
        report = characterize(trace.timed_packets(8000, rate_bps=10e9))
        assert report.mean_bytes == pytest.approx(
            cal.ABILENE_MEAN_PACKET_BYTES, rel=0.05)

    def test_imix_size_shares(self):
        workload = ImixWorkload("simple", seed=2)
        pairs = [(i * 1e-6, p)
                 for i, p in enumerate(workload.packets(6000))]
        shares = characterize(pairs).size_shares()
        # 7:4:1 mix.
        assert shares[64] == pytest.approx(7 / 12, abs=0.04)
        assert shares[1518] == pytest.approx(1 / 12, abs=0.03)

    def test_bursty_flows_have_high_cv(self):
        gen = FlowGenerator(num_flows=5, packets_per_flow=100,
                            burst_size=8, burst_gap_sec=1e-3,
                            intra_burst_gap_sec=1e-6, seed=3)
        bursty = characterize(gen.timed_packets())
        assert bursty.burstiness() > 1.5

    def test_rejects_time_reversal(self):
        pairs = [(1.0, Packet.udp("1.1.1.1", "2.2.2.2")),
                 (0.5, Packet.udp("1.1.1.1", "2.2.2.2"))]
        with pytest.raises(ConfigurationError):
            characterize(pairs)

    def test_burstiness_needs_gaps(self):
        report = characterize([(0.0, Packet.udp("1.1.1.1", "2.2.2.2"))])
        with pytest.raises(ConfigurationError):
            report.burstiness()


class TestPcapCharacterization:
    def test_round_trip_through_disk(self, tmp_path):
        path = str(tmp_path / "c.pcap")
        trace = AbileneTrace(seed=4)
        save_trace(path, trace.timed_packets(500, rate_bps=5e9))
        report = characterize_pcap(path)
        assert report.packets == 500
        assert report.rate_bps == pytest.approx(5e9, rel=0.25)
        assert report.flow_count > 10
