"""Tests for the benchmark runner, BENCH schema, and regression gate."""

import copy
import json
import pathlib
import subprocess
import sys

import pytest

from repro.cli import main
from repro.obs import compare, make_baseline, run_benchmark, write_bench_json
from repro.obs.benchrun import QUICK_BENCHMARKS, discover, normalize
from repro.obs.schema import BASELINE_SCHEMA, BENCH_SCHEMA, validate_bench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

# One cheap, fully-analytic scenario reused across tests.
BENCH_NAME = "fig6_queues"


@pytest.fixture(scope="module")
def bench_doc():
    return run_benchmark(BENCH_NAME)


class TestNaming:
    def test_normalize_accepts_all_spellings(self):
        assert normalize("bench_fig6_queues") == "fig6_queues"
        assert normalize("fig6_queues") == "fig6_queues"
        assert normalize("bench_fig6_queues.py") == "fig6_queues"

    def test_discover_finds_the_quick_subset(self):
        names = discover()
        for name in QUICK_BENCHMARKS:
            assert name in names

    def test_unknown_benchmark_raises(self):
        with pytest.raises(FileNotFoundError):
            run_benchmark("no_such_scenario")


class TestRunBenchmark:
    def test_document_is_schema_valid(self, bench_doc):
        assert validate_bench(bench_doc) == []
        assert bench_doc["schema"] == BENCH_SCHEMA
        assert bench_doc["name"] == BENCH_NAME
        assert bench_doc["status"] == "passed"

    def test_rate_scalars_present(self, bench_doc):
        kinds = {cell["kind"] for cell in bench_doc["scalars"].values()}
        assert "rate" in kinds and "time" in kinds

    def test_written_file_round_trips(self, bench_doc, tmp_path):
        path = write_bench_json(bench_doc, tmp_path)
        assert path.name == "BENCH_%s.json" % BENCH_NAME
        assert validate_bench(json.loads(path.read_text())) == []

    def test_non_time_scalars_reproducible(self, bench_doc):
        """Seeded scenarios must emit identical rates run-to-run (time
        and perf kinds measure the host machine, not the model)."""
        again = run_benchmark(BENCH_NAME)
        stable = {k: v for k, v in bench_doc["scalars"].items()
                  if v["kind"] not in ("time", "perf")}
        stable_again = {k: v for k, v in again["scalars"].items()
                        if v["kind"] not in ("time", "perf")}
        assert stable == stable_again

    def test_perf_scalars_present(self, bench_doc):
        assert bench_doc["scalars"]["run.wall_clock_s"]["kind"] == "perf"
        assert bench_doc["scalars"]["run.events_per_sec"]["kind"] == "perf"
        # fig6_queues is fully analytic -- no DES runs, so the engine
        # wall clock is legitimately zero; it still must be present and
        # bounded by the whole run's wall time.
        assert bench_doc["wall_clock_s"] >= 0.0
        assert bench_doc["events_per_sec"] >= 0.0
        assert bench_doc["wall_clock_s"] <= bench_doc["wall_time_sec"]

    def test_perf_fields_nonzero_for_des_scenario(self):
        from repro.obs.metrics import MetricsRegistry, use_registry
        from repro.simnet import Simulator
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.run()
        wall = registry.get("engine_wall_seconds")
        assert wall is not None and wall.total() > 0.0


class TestCompare:
    def test_classify_directions(self):
        assert compare.classify("rate", 10.0, 8.0, 0.10)[1] == "regressed"
        assert compare.classify("rate", 10.0, 12.0, 0.10)[1] == "improved"
        assert compare.classify("time", 1.0, 1.5, 0.10)[1] == "regressed"
        assert compare.classify("time", 1.0, 0.5, 0.10)[1] == "improved"
        assert compare.classify("rate", 10.0, 9.5, 0.10)[1] == "ok"
        # Wall-clock perf never gates, however large the swing.
        assert compare.classify("perf", 100.0, 10.0, 0.10)[1] == "info"
        assert compare.classify("perf", 10.0, 100.0, 0.10)[1] == "info"

    def test_make_baseline_and_compare(self, bench_doc):
        baseline = make_baseline([bench_doc], created_unix=0.0)
        assert baseline["schema"] == BASELINE_SCHEMA
        deltas = compare.compare_docs(baseline, bench_doc)
        assert deltas and all(d.status == "ok" for d in deltas)

    def test_degraded_rates_regress(self, bench_doc):
        baseline = make_baseline([bench_doc], created_unix=0.0)
        degraded = copy.deepcopy(bench_doc)
        for cell in degraded["scalars"].values():
            if cell["kind"] == "rate":
                cell["value"] *= 0.85
        deltas = compare.compare_docs(baseline, degraded)
        assert any(d.regressed for d in deltas)

    def test_missing_benchmark_raises(self, bench_doc):
        baseline = make_baseline([bench_doc], created_unix=0.0)
        other = copy.deepcopy(bench_doc)
        other["name"] = "something_else"
        with pytest.raises(ValueError):
            compare.compare_docs(baseline, other)

    def test_invalid_document_raises(self, bench_doc):
        baseline = make_baseline([bench_doc], created_unix=0.0)
        with pytest.raises(ValueError):
            compare.compare_docs(baseline, {"schema": "bogus"})


class TestCliObs:
    def test_run_and_report(self, tmp_path, capsys):
        assert main(["obs", "run", BENCH_NAME,
                     "--out-dir", str(tmp_path)]) == 0
        bench = tmp_path / ("BENCH_%s.json" % BENCH_NAME)
        assert validate_bench(json.loads(bench.read_text())) == []
        assert main(["obs", "report", str(bench)]) == 0
        out = capsys.readouterr().out
        assert BENCH_NAME in out and "passed" in out

    def test_diff_exit_codes(self, tmp_path, capsys):
        assert main(["obs", "run", BENCH_NAME, "--out-dir", str(tmp_path),
                     "--update-baseline", str(tmp_path / "base.json")]) == 0
        bench = tmp_path / ("BENCH_%s.json" % BENCH_NAME)
        base = tmp_path / "base.json"
        assert main(["obs", "diff", str(base), str(bench)]) == 0
        # Degrade every rate by 15% -> exit 1.
        doc = json.loads(bench.read_text())
        for cell in doc["scalars"].values():
            if cell["kind"] == "rate":
                cell["value"] *= 0.85
        degraded = tmp_path / "degraded.json"
        degraded.write_text(json.dumps(doc))
        assert main(["obs", "diff", str(base), str(degraded)]) == 1
        # Garbage input -> exit 2.
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["obs", "diff", str(base), str(bad)]) == 2
        capsys.readouterr()

    def test_run_rejects_unknown_name(self, tmp_path, capsys):
        assert main(["obs", "run", "nope",
                     "--out-dir", str(tmp_path)]) == 2
        capsys.readouterr()

    def test_timeline_preset(self, tmp_path, capsys):
        from repro.obs.schema import validate_trace

        assert main(["obs", "timeline", "rb4", "--out-dir", str(tmp_path),
                     "--duration-ms", "0.4"]) == 0
        doc = json.loads((tmp_path / "TRACE_rb4.json").read_text())
        assert validate_trace(doc) == []
        assert doc["traceEvents"]
        out = capsys.readouterr().out
        assert "perfetto" in out.lower()

    def test_timeline_from_bench_json(self, bench_doc, tmp_path, capsys):
        from repro.obs.schema import validate_trace

        path = write_bench_json(bench_doc, tmp_path)
        assert main(["obs", "timeline", str(path),
                     "--out-dir", str(tmp_path)]) == 0
        doc = json.loads(
            (tmp_path / ("TRACE_%s.json" % BENCH_NAME)).read_text())
        assert validate_trace(doc) == []
        capsys.readouterr()

    def test_timeline_rejects_bad_targets(self, tmp_path, capsys):
        assert main(["obs", "timeline", "nope",
                     "--out-dir", str(tmp_path)]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["obs", "timeline", str(bad),
                     "--out-dir", str(tmp_path)]) == 2
        assert main(["obs", "timeline"]) == 2
        capsys.readouterr()


class TestRegressionScript:
    SCRIPT = str(REPO_ROOT / "scripts" / "check_bench_regression.py")

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, self.SCRIPT, *argv],
            capture_output=True, text=True)

    def test_clean_results_pass(self, bench_doc, tmp_path):
        write_bench_json(bench_doc, tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            make_baseline([bench_doc], created_unix=0.0)))
        proc = self._run("--baseline", str(baseline),
                         "--results-dir", str(tmp_path))
        assert proc.returncode == 0, proc.stderr

    def test_15pct_degraded_fails(self, bench_doc, tmp_path):
        """The ISSUE's acceptance check: a 15%-degraded copy must fail."""
        degraded = copy.deepcopy(bench_doc)
        for cell in degraded["scalars"].values():
            if cell["kind"] == "rate":
                cell["value"] *= 0.85
        write_bench_json(degraded, tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            make_baseline([bench_doc], created_unix=0.0)))
        proc = self._run("--baseline", str(baseline),
                         "--results-dir", str(tmp_path))
        assert proc.returncode == 1, proc.stdout + proc.stderr

    def test_unknown_scalar_keys_warn_without_failing(self, bench_doc,
                                                      tmp_path):
        """Scalars absent from the baseline entry surface as warnings
        (all kinds), and never flip the exit code."""
        extended = copy.deepcopy(bench_doc)
        extended["scalars"]["test_extra.fresh_mpps.mean"] = {
            "value": 1.0, "kind": "rate"}
        extended["scalars"]["test_extra.oddball_events"] = {
            "value": 3.0, "kind": "count"}
        write_bench_json(extended, tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            make_baseline([bench_doc], created_unix=0.0)))
        proc = self._run("--baseline", str(baseline),
                         "--results-dir", str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "warning:" in proc.stdout
        assert "test_extra.fresh_mpps.mean" in proc.stdout
        # Non-gated kinds used to vanish silently; now they warn too.
        assert "test_extra.oddball_events" in proc.stdout

    def test_unknown_scalar_keys_helper(self, bench_doc):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "check_bench_regression", self.SCRIPT)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        baseline = make_baseline([bench_doc], created_unix=0.0)
        extended = copy.deepcopy(bench_doc)
        extended["scalars"]["test_x.sneaky_seconds"] = {
            "value": 1.0, "kind": "time"}
        assert module.unknown_scalar_keys(baseline, bench_doc) == []
        assert module.unknown_scalar_keys(baseline, extended) == \
            ["test_x.sneaky_seconds"]
        # No baseline entry for this benchmark: nothing to warn about
        # (compare_docs already hard-errors on that case).
        renamed = copy.deepcopy(bench_doc)
        renamed["name"] = "unseen"
        assert module.unknown_scalar_keys(baseline, renamed) == []

    def test_unknown_benchmark_warns_only_with_flag(self, bench_doc,
                                                    tmp_path):
        """Artifacts with no baseline entry hard-error by default (the
        PR gate) but downgrade to a warning under
        --ignore-unknown-benchmarks (the nightly full-suite run)."""
        renamed = copy.deepcopy(bench_doc)
        renamed["name"] = "unbaselined"
        write_bench_json(renamed, tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            make_baseline([bench_doc], created_unix=0.0)))
        strict = self._run("--baseline", str(baseline),
                           "--results-dir", str(tmp_path))
        assert strict.returncode == 2
        relaxed = self._run("--baseline", str(baseline),
                            "--results-dir", str(tmp_path),
                            "--ignore-unknown-benchmarks")
        assert relaxed.returncode == 0, relaxed.stdout + relaxed.stderr
        assert "warning: unbaselined has no baseline entry" \
            in relaxed.stdout

    def test_missing_baseline_is_exit_2(self, tmp_path):
        proc = self._run("--baseline", str(tmp_path / "absent.json"),
                         "--results-dir", str(tmp_path))
        assert proc.returncode == 2

    def test_committed_baseline_matches_fresh_run(self):
        """The baseline in git must describe what the code produces
        today -- otherwise the CI gate drifts into noise."""
        committed = compare.load_json(
            str(REPO_ROOT / "benchmarks" / "results" / "baseline.json"))
        doc = run_benchmark(BENCH_NAME)
        deltas = compare.compare_docs(committed, doc)
        assert deltas, "baseline has no rate scalars for %s" % BENCH_NAME
        assert all(not d.regressed for d in deltas)

    def test_perf_section_reports_parallel_scalars(self, bench_doc,
                                                   tmp_path):
        """Satellite: barrier/lookahead/imbalance perf scalars show up
        in the informational perf section and never gate."""
        doc = copy.deepcopy(bench_doc)
        doc["scalars"]["run.barrier_wait_seconds{workers=2}"] = {
            "value": 0.5, "kind": "perf"}
        doc["scalars"]["run.lookahead_efficiency{workers=2}"] = {
            "value": 0.97, "kind": "perf"}
        doc["scalars"]["run.imbalance{workers=2}"] = {
            "value": 1.2, "kind": "perf"}
        write_bench_json(doc, tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            make_baseline([doc], created_unix=0.0)))
        proc = self._run("--baseline", str(baseline),
                         "--results-dir", str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "parallel-runtime perf (informational, never gates)" \
            in proc.stdout
        for key in ("barrier_wait_seconds", "lookahead_efficiency",
                    "imbalance"):
            assert key in proc.stdout


class TestParallelTelemetryHarvest:
    def _parallel_registry(self):
        from repro.core import RouteBricksRouter
        from repro.obs.metrics import MetricsRegistry
        from repro.parallel import simulate_parallel
        from repro.workloads import WorkloadSpec
        from repro.workloads.matrices import uniform_matrix

        router = RouteBricksRouter(num_nodes=4, seed=7)
        workload = WorkloadSpec.fixed(64).with_matrix(
            uniform_matrix(4, router.port_rate_bps * 0.3))
        registry = MetricsRegistry(enabled=True)
        simulate_parallel(router, workload, until=4e-4, workers=2,
                          backend="inline", metrics=registry)
        return registry

    def test_parallel_perf_scalars_harvested(self):
        from repro.obs.benchrun import _parallel_perf_scalars

        scalars = _parallel_perf_scalars(self._parallel_registry())
        assert scalars["run.barrier_wait_seconds{workers=2}"] > 0.0
        assert 0.0 < scalars["run.lookahead_efficiency{workers=2}"] <= 1.0
        assert scalars["run.imbalance{workers=2}"] >= 1.0

    def test_empty_registry_harvests_nothing(self):
        from repro.obs.benchrun import _parallel_perf_scalars
        from repro.obs.metrics import MetricsRegistry

        assert _parallel_perf_scalars(MetricsRegistry(enabled=True)) == {}


class TestTraceSidecar:
    def test_analytic_scenario_skips_trace_sidecar(self, bench_doc,
                                                   tmp_path):
        # fig6 charges no timelines, profile frames, or sampled traces:
        # an all-empty timeline would only confuse Perfetto users.
        write_bench_json(bench_doc, tmp_path)
        assert not list(tmp_path.glob("TRACE_*.json"))

    def test_sidecar_written_when_snapshot_has_events(self, bench_doc,
                                                      tmp_path):
        from repro.obs.schema import validate_trace

        doc = copy.deepcopy(bench_doc)
        doc["name"] = "mini_parallel"
        registry = TestParallelTelemetryHarvest()._parallel_registry()
        doc["metrics"] = registry.snapshot()
        write_bench_json(doc, tmp_path)
        trace = tmp_path / "TRACE_mini_parallel.json"
        assert trace.exists()
        exported = json.loads(trace.read_text())
        assert validate_trace(exported) == []
        assert any(e["ph"] == "X" for e in exported["traceEvents"])
