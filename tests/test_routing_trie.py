"""Tests for the binary trie LPM structure."""

import pytest

from repro.errors import RoutingError
from repro.net import IPv4Address, Prefix
from repro.routing import BinaryTrie


@pytest.fixture
def trie():
    t = BinaryTrie()
    t.insert(Prefix.parse("10.0.0.0/8"), "ten")
    t.insert(Prefix.parse("10.1.0.0/16"), "ten-one")
    t.insert(Prefix.parse("10.1.2.0/24"), "ten-one-two")
    t.insert(Prefix.parse("192.168.0.0/16"), "private")
    return t


class TestLookup:
    def test_longest_match_wins(self, trie):
        assert trie.lookup("10.1.2.3") == "ten-one-two"
        assert trie.lookup("10.1.9.9") == "ten-one"
        assert trie.lookup("10.200.0.1") == "ten"

    def test_miss(self, trie):
        assert trie.lookup("11.0.0.1") is None

    def test_default_route(self, trie):
        trie.insert(Prefix(0, 0), "default")
        assert trie.lookup("11.0.0.1") == "default"
        assert trie.lookup("10.1.2.3") == "ten-one-two"

    def test_slash32(self, trie):
        trie.insert(Prefix.parse("10.1.2.3/32"), "host")
        assert trie.lookup("10.1.2.3") == "host"
        assert trie.lookup("10.1.2.4") == "ten-one-two"

    def test_lookup_with_prefix(self, trie):
        prefix, value = trie.lookup_with_prefix("10.1.2.3")
        assert prefix == Prefix.parse("10.1.2.0/24")
        assert value == "ten-one-two"

    def test_lookup_covering_respects_max_length(self, trie):
        prefix, value = trie.lookup_covering("10.1.2.3", 23)
        assert prefix == Prefix.parse("10.1.0.0/16")
        assert value == "ten-one"
        prefix, value = trie.lookup_covering("10.1.2.3", 8)
        assert value == "ten"


class TestUpdates:
    def test_insert_replaces(self, trie):
        trie.insert(Prefix.parse("10.0.0.0/8"), "TEN")
        assert trie.lookup("10.200.0.1") == "TEN"
        assert len(trie) == 4

    def test_remove_restores_covering(self, trie):
        trie.remove(Prefix.parse("10.1.2.0/24"))
        assert trie.lookup("10.1.2.3") == "ten-one"
        assert len(trie) == 3

    def test_remove_missing_raises(self, trie):
        with pytest.raises(RoutingError):
            trie.remove(Prefix.parse("77.0.0.0/8"))

    def test_remove_leaf_then_miss(self):
        t = BinaryTrie()
        t.insert(Prefix.parse("1.0.0.0/8"), 1)
        t.remove(Prefix.parse("1.0.0.0/8"))
        assert t.lookup("1.2.3.4") is None
        assert len(t) == 0

    def test_exact_get_and_contains(self, trie):
        assert trie.get(Prefix.parse("10.1.0.0/16")) == "ten-one"
        assert trie.get(Prefix.parse("10.2.0.0/16")) is None
        assert trie.contains(Prefix.parse("10.0.0.0/8"))
        assert not trie.contains(Prefix.parse("10.0.0.0/9"))

    def test_items_round_trip(self, trie):
        entries = dict(trie.items())
        assert entries[Prefix.parse("10.1.2.0/24")] == "ten-one-two"
        assert len(entries) == len(trie)

    def test_items_includes_default(self):
        t = BinaryTrie()
        t.insert(Prefix(0, 0), "d")
        assert dict(t.items()) == {Prefix(0, 0): "d"}


class TestPruning:
    def test_remove_prunes_empty_branches(self):
        t = BinaryTrie()
        t.insert(Prefix.parse("10.1.2.0/24"), "x")
        t.remove(Prefix.parse("10.1.2.0/24"))
        # Root should have no children left.
        assert t._root.children == [None, None]

    def test_remove_keeps_shared_branches(self):
        t = BinaryTrie()
        t.insert(Prefix.parse("10.0.0.0/8"), "a")
        t.insert(Prefix.parse("10.1.0.0/16"), "b")
        t.remove(Prefix.parse("10.1.0.0/16"))
        assert t.lookup("10.1.0.1") == "a"
