"""Flow-skewed workload generator: determinism, skew shape, and churn."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import SkewedFlowWorkload

SEED = 20090917


def _workload(**kwargs):
    defaults = dict(num_flows=128, skew=1.1, churn_packets=None,
                    rate_pps=1e6, seed=SEED)
    defaults.update(kwargs)
    return SkewedFlowWorkload(**defaults)


class TestDeterminism:
    def test_same_seed_same_records(self):
        first = list(_workload().records(600))
        second = list(_workload().records(600))
        assert first == second

    def test_same_seed_same_flow_id_stream(self):
        first = list(_workload(churn_packets=50).flow_ids(600))
        second = list(_workload(churn_packets=50).flow_ids(600))
        assert first == second

    def test_flow_ids_match_records(self):
        ids = list(_workload(churn_packets=50).flow_ids(400))
        records = list(_workload(churn_packets=50).records(400))
        assert ids == [(r.flow_slot, r.flow_generation) for r in records]

    def test_different_seeds_differ(self):
        first = list(_workload(seed=1).records(200))
        second = list(_workload(seed=2).records(200))
        assert first != second

    def test_sequence_and_time_are_monotone(self):
        records = list(_workload().records(300))
        assert [r.seq for r in records] == list(range(300))
        times = [r.time for r in records]
        assert all(b > a for a, b in zip(times, times[1:]))


class TestSkewShape:
    def test_top_share_grows_with_skew(self):
        shares = []
        for skew in (0.0, 0.8, 1.4):
            records = list(_workload(skew=skew).records(4000))
            shares.append(SkewedFlowWorkload.top_share(records))
        assert shares[0] < shares[1] < shares[2]

    def test_zero_skew_is_roughly_uniform(self):
        records = list(_workload(skew=0.0).records(8000))
        top = SkewedFlowWorkload.top_share(records)
        # Uniform over 128 slots: expected share 1/128 ~ 0.0078; the
        # maximum of 128 binomials stays well under 4x that.
        assert top < 4.0 / 128

    def test_high_skew_concentrates(self):
        records = list(_workload(skew=1.4).records(8000))
        assert SkewedFlowWorkload.top_share(records) > 0.15

    def test_empirical_shares_sum_to_one(self):
        records = list(_workload().records(2000))
        shares = SkewedFlowWorkload.empirical_shares(records)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_sizes_follow_abilene_mix(self):
        records = list(_workload().records(4000))
        sizes = {r.length for r in records}
        assert sizes <= {64, 576, 1500}
        assert len(sizes) > 1


class TestChurn:
    def test_no_churn_keeps_generation_zero(self):
        records = list(_workload(skew=0.0).records(2000))
        assert all(r.flow_generation == 0 for r in records)
        distinct = {r.key for r in records}
        assert len(distinct) <= 128

    def test_churn_turns_flow_identities_over(self):
        records = list(_workload(skew=0.0, churn_packets=20).records(4000))
        assert max(r.flow_generation for r in records) > 0
        distinct = {r.key for r in records}
        assert len(distinct) > 128

    def test_generation_changes_key_but_not_slot_structure(self):
        records = list(_workload(skew=1.1, churn_packets=30).records(3000))
        by_slot_gen = {}
        for record in records:
            by_slot_gen.setdefault(
                (record.flow_slot, record.flow_generation),
                set()).add(record.key)
        # One (slot, generation) is exactly one five-tuple.
        assert all(len(keys) == 1 for keys in by_slot_gen.values())


class TestValidation:
    def test_bad_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            _workload(num_flows=0)
        with pytest.raises(ConfigurationError):
            _workload(skew=-0.1)
        with pytest.raises(ConfigurationError):
            _workload(churn_packets=0.5)
        with pytest.raises(ConfigurationError):
            _workload(rate_pps=0.0)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            list(_workload().records(-1))
