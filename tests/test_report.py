"""Tests for report formatting, including the ASCII bar charts."""

import pytest

from repro.analysis.report import ascii_bars, format_table, paper_vs_measured


class TestAsciiBars:
    def test_bars_scale_to_peak(self):
        text = ascii_bars(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_units(self):
        text = ascii_bars(["x"], [1.0], title="T", unit=" Gbps")
        assert text.startswith("T\n")
        assert "Gbps" in text

    def test_zero_values_allowed(self):
        text = ascii_bars(["a", "b"], [0.0, 2.0])
        assert "0.00" in text

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ascii_bars([], [])
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bars(["a"], [-1.0])

    def test_labels_aligned(self):
        text = ascii_bars(["short", "a-much-longer-label"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[0].index("#") == lines[1].index("#")


class TestPaperVsMeasured:
    def test_ratio_column(self):
        text = paper_vs_measured([{"metric": "x", "paper": 2.0,
                                   "measured": 1.0}])
        assert "0.500" in text

    def test_missing_values_tolerated(self):
        text = paper_vs_measured([{"metric": "x", "measured": 1.0}])
        assert "x" in text


class TestFormatTableEdgeCases:
    def test_missing_columns_render_empty(self):
        text = format_table([{"a": 1}], ["a", "b"])
        assert "a" in text

    def test_custom_float_format(self):
        text = format_table([{"v": 3.14159}], ["v"], float_format="%.4f")
        assert "3.1416" in text
