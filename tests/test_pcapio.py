"""Tests for pcap trace I/O."""

import io
import struct

import pytest

from repro.errors import PacketError
from repro.net import Packet
from repro.workloads import AbileneTrace
from repro.workloads.pcapio import load_trace, read_pcap, save_trace, write_pcap


def _timed(count=5, gap=1e-4):
    packets = []
    for i in range(count):
        packet = Packet.udp("10.0.0.%d" % (i + 1), "10.1.0.1",
                            length=100 + i * 10, src_port=1000 + i)
        packets.append((i * gap, packet))
    return packets


class TestRoundTrip:
    def test_write_read_round_trip(self):
        buffer = io.BytesIO()
        original = _timed()
        assert write_pcap(buffer, original) == 5
        buffer.seek(0)
        loaded = list(read_pcap(buffer))
        assert len(loaded) == 5
        for (t0, p0), (t1, p1) in zip(original, loaded):
            assert t1 == pytest.approx(t0, abs=1e-6)
            assert p1.length == p0.length
            assert p1.ip.src == p0.ip.src
            assert p1.l4.src_port == p0.l4.src_port

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        trace = AbileneTrace(seed=1)
        count = save_trace(path, trace.timed_packets(200, rate_bps=1e9))
        assert count == 200
        loaded = list(load_trace(path))
        assert len(loaded) == 200
        times = [t for t, _ in loaded]
        assert times == sorted(times)

    def test_renumber_flows_restores_sequences(self, tmp_path):
        path = str(tmp_path / "seq.pcap")
        pairs = []
        for i in range(6):
            packet = Packet.udp("10.0.0.1", "10.0.0.2", src_port=5)
            packet.flow_seq = i + 1
            pairs.append((i * 1e-5, packet))
        save_trace(path, pairs)
        loaded = list(load_trace(path, renumber_flows=True))
        assert [p.flow_seq for _, p in loaded] == [1, 2, 3, 4, 5, 6]
        # Without renumbering the wire format cannot carry flow_seq.
        plain = list(load_trace(path))
        assert all(p.flow_seq == 0 for _, p in plain)

    def test_empty_trace(self):
        buffer = io.BytesIO()
        assert write_pcap(buffer, []) == 0
        buffer.seek(0)
        assert list(read_pcap(buffer)) == []

    def test_timestamp_microsecond_precision(self):
        buffer = io.BytesIO()
        write_pcap(buffer, [(1.234567, Packet.udp("1.1.1.1", "2.2.2.2"))])
        buffer.seek(0)
        (time, _), = read_pcap(buffer)
        assert time == pytest.approx(1.234567, abs=1e-6)


class TestValidation:
    def test_rejects_decreasing_timestamps(self):
        pairs = [(1.0, Packet.udp("1.1.1.1", "2.2.2.2")),
                 (0.5, Packet.udp("1.1.1.1", "2.2.2.2"))]
        with pytest.raises(PacketError):
            write_pcap(io.BytesIO(), pairs)

    def test_rejects_negative_timestamp(self):
        with pytest.raises(PacketError):
            write_pcap(io.BytesIO(),
                       [(-1.0, Packet.udp("1.1.1.1", "2.2.2.2"))])

    def test_rejects_bad_magic(self):
        data = struct.pack("<IHHiIII", 0xDEADBEEF, 2, 4, 0, 0, 65535, 1)
        with pytest.raises(PacketError):
            list(read_pcap(io.BytesIO(data)))

    def test_rejects_truncated_header(self):
        with pytest.raises(PacketError):
            list(read_pcap(io.BytesIO(b"\x00" * 10)))

    def test_rejects_truncated_record(self):
        buffer = io.BytesIO()
        write_pcap(buffer, _timed(1))
        data = buffer.getvalue()[:-5]  # chop the last packet body
        with pytest.raises(PacketError):
            list(read_pcap(io.BytesIO(data)))

    def test_rejects_wrong_linktype(self):
        data = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        with pytest.raises(PacketError):
            list(read_pcap(io.BytesIO(data)))
