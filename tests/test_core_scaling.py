"""Cluster scaling tests: the paper's headline claim that capacity grows
linearly with servers (Sec. 1-2), checked on the analytic model and the
packet-level DES at several cluster sizes."""

import pytest

from repro import calibration as cal
from repro.core import RouteBricksRouter
from repro.workloads import FixedSizeWorkload, WorkloadSpec


class TestLinearScaling:
    def test_aggregate_throughput_linear_in_nodes(self):
        """Doubling the cluster doubles aggregate capacity (same per-port
        rate), for both the CPU-bound and NIC-bound workloads."""
        for packet_bytes in (64, cal.ABILENE_MEAN_PACKET_BYTES):
            per_port = {}
            for n in (4, 8, 16):
                result = RouteBricksRouter(num_nodes=n).max_throughput(
                    WorkloadSpec.fixed(packet_bytes))
                per_port[n] = result.per_port_bps
            # Per-port rate roughly constant => aggregate linear in N.
            rates = list(per_port.values())
            assert max(rates) / min(rates) < 1.25

    def test_per_port_rate_improves_slightly_with_n(self):
        """Larger meshes spread internal traffic thinner (share 1/(N-1)),
        easing the NIC ceiling -- per-port Abilene rate grows with N."""
        small = RouteBricksRouter(num_nodes=4).max_throughput(
            WorkloadSpec.fixed(740))
        large = RouteBricksRouter(num_nodes=8).max_throughput(
            WorkloadSpec.fixed(740))
        assert large.per_port_bps >= small.per_port_bps

    def test_worst_case_penalty_constant_in_n(self):
        """The VLB tax (uniform vs worst-case ratio) does not grow with
        cluster size -- the property that makes the design scale."""
        ratios = []
        for n in (4, 8, 16):
            router = RouteBricksRouter(num_nodes=n)
            uniform = router.max_throughput(WorkloadSpec.fixed(64),
                                            uniform=True)
            worst = router.max_throughput(WorkloadSpec.fixed(64),
                                          uniform=False)
            ratios.append(uniform.aggregate_bps / worst.aggregate_bps)
        assert max(ratios) - min(ratios) < 0.2
        assert all(1.0 < ratio < 1.6 for ratio in ratios)


class TestLargerClusterSimulation:
    def _events(self, num_nodes, packets=2400, seed=5):
        workload = FixedSizeWorkload(packet_bytes=740, num_flows=96,
                                     seed=seed)
        events = []
        gap = 1e-6
        for index, packet in enumerate(workload.packets(packets)):
            ingress = index % num_nodes
            egress = (ingress + 1 + (index // num_nodes) % (num_nodes - 1)) \
                % num_nodes
            events.append((index * gap, ingress, egress, packet))
        return events

    def test_eight_node_mesh_delivers_everything(self):
        router = RouteBricksRouter(num_nodes=8, seed=2)
        report = router.simulate(self._events(8))
        assert report.delivered_packets == report.offered_packets
        assert report.dropped_packets == 0

    def test_traffic_spread_across_all_nodes(self):
        router = RouteBricksRouter(num_nodes=8, seed=2)
        report = router.simulate(self._events(8))
        ingresses = [stats["ingress"] for stats in report.node_stats]
        assert min(ingresses) > 0
        assert max(ingresses) - min(ingresses) <= 1

    def test_sixteen_node_mesh_functional(self):
        router = RouteBricksRouter(num_nodes=16, seed=3)
        report = router.simulate(self._events(16, packets=1600))
        assert report.delivered_packets == report.offered_packets

    def test_latency_does_not_grow_with_mesh_size(self):
        """Full-mesh paths are 2-3 servers regardless of N (Sec. 3.3's
        latency argument for the mesh)."""
        small_report = RouteBricksRouter(num_nodes=4, seed=4).simulate(
            self._events(4, packets=800))
        large_report = RouteBricksRouter(num_nodes=16, seed=4).simulate(
            self._events(16, packets=800))
        assert large_report.latency_usec.percentile(50) == pytest.approx(
            small_report.latency_usec.percentile(50), rel=0.15)
