"""Tests for the power-management model (Sec. 8)."""

import pytest

from repro import calibration as cal
from repro.core.power import (
    POWER_SHARES,
    SERVER_POWER_W,
    cluster_power_kw,
    component_utilizations,
    managed_power,
)
from repro.errors import ConfigurationError


class TestUtilizations:
    def test_cpu_full_at_saturation(self):
        utils = component_utilizations(cal.MINIMAL_FORWARDING, 64)
        assert utils["cpu"] == pytest.approx(1.0)
        assert utils["memory"] < 0.5
        assert utils["fixed"] == 1.0

    def test_scale_with_offered_fraction(self):
        half = component_utilizations(cal.MINIMAL_FORWARDING, 64,
                                      offered_fraction=0.5)
        assert half["cpu"] == pytest.approx(0.5)

    def test_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            component_utilizations(cal.MINIMAL_FORWARDING, 64,
                                   offered_fraction=0)


class TestManagedPower:
    def test_shares_sum_to_one(self):
        assert sum(POWER_SHARES.values()) == pytest.approx(1.0)

    def test_saturation_still_saves_on_idle_buses(self):
        estimate = managed_power(cal.MINIMAL_FORWARDING, 64)
        # CPU pegged but memory/I/O mostly idle: real savings exist.
        assert 0.05 < estimate.savings_fraction < 0.35
        assert estimate.managed_w < SERVER_POWER_W

    def test_light_load_saves_more(self):
        busy = managed_power(cal.MINIMAL_FORWARDING, 64,
                             offered_fraction=1.0)
        light = managed_power(cal.MINIMAL_FORWARDING, 64,
                              offered_fraction=0.2)
        assert light.managed_w < busy.managed_w

    def test_memory_hungry_app_saves_less_on_memory(self):
        fwd = managed_power(cal.MINIMAL_FORWARDING, 64)
        rtr = managed_power(cal.IP_ROUTING, 64)
        assert rtr.component_w["memory"] > fwd.component_w["memory"]

    def test_components_never_exceed_budget(self):
        estimate = managed_power(cal.IPSEC, 64)
        for component, draw in estimate.component_w.items():
            assert draw <= SERVER_POWER_W * POWER_SHARES[component] + 1e-9


class TestClusterPower:
    def test_unmanaged_matches_rb4(self):
        # 4 x 650 W = 2.6 kW, the Sec. 8 figure.
        assert cluster_power_kw(4, cal.MINIMAL_FORWARDING,
                                managed=False) == pytest.approx(2.6)

    def test_managed_below_unmanaged(self):
        managed = cluster_power_kw(4, cal.MINIMAL_FORWARDING,
                                   offered_fraction=0.5)
        assert managed < 2.6

    def test_rejects_empty_cluster(self):
        with pytest.raises(ConfigurationError):
            cluster_power_kw(0, cal.MINIMAL_FORWARDING)
