"""Tests for the explicit fabric graphs (mesh, k-ary n-fly, torus)."""

import pytest

from repro.core.fabric import (
    FabricNetwork,
    current_server_fabric,
    fly_graph,
    mesh_graph,
    sec33_latency_estimate,
    torus_graph,
)
from repro.errors import TopologyError


class TestMeshGraph:
    def test_every_pair_two_hops(self):
        fabric = FabricNetwork(mesh_graph(6))
        for s in range(6):
            for d in range(6):
                if s != d:
                    assert fabric.hops(s, d) == 2

    def test_vlb_path_three_hops(self):
        fabric = FabricNetwork(mesh_graph(6))
        assert fabric.vlb_hops(0, 3, 5) == 3

    def test_transit_load_uniform(self):
        fabric = FabricNetwork(mesh_graph(4))
        loads = fabric.transit_load(10e9)
        # Each node sources 10G and sinks 10G; no transit in a mesh.
        values = set(round(v / 1e9, 3) for v in loads.values())
        assert values == {20.0}

    def test_rejects_tiny(self):
        with pytest.raises(TopologyError):
            mesh_graph(1)


class TestFlyGraph:
    def test_terminal_count(self):
        fabric = FabricNetwork(fly_graph(4, 3))
        assert len(fabric.io_nodes) == 64
        # 64 terminals + 3 stages x 16 switches.
        assert fabric.num_servers() == 64 + 48

    def test_all_pairs_reachable_in_n_plus_2(self):
        stages = 3
        fabric = FabricNetwork(fly_graph(2, stages))
        for s in range(8):
            for d in range(8):
                if s == d:
                    continue
                # terminal -> stage0..stage(n-1) -> terminal.
                assert fabric.hops(s, d) == stages + 2

    def test_partial_terminals(self):
        fabric = FabricNetwork(fly_graph(4, 2, num_terminals=10))
        assert len(fabric.io_nodes) == 10
        assert fabric.hops(0, 9) >= 2

    def test_too_many_terminals(self):
        with pytest.raises(TopologyError):
            fly_graph(2, 2, num_terminals=5)

    def test_fly_latency_grows_with_stages(self):
        small = FabricNetwork(fly_graph(4, 2))
        large = FabricNetwork(fly_graph(4, 3))
        assert large.hops(0, 1) > small.hops(0, 1)


class TestTorusGraph:
    def test_degree(self):
        graph = torus_graph(4, 2)
        for node in graph.nodes:
            assert graph.out_degree(node) == 4  # 2 per dimension

    def test_wraparound(self):
        fabric = FabricNetwork(torus_graph(4, 1))
        # On a 4-ring, 0 -> 3 wraps in one hop (path of 2 servers).
        assert fabric.hops(0, 3) == 2

    def test_diameter_scales(self):
        small = FabricNetwork(torus_graph(3, 2))
        large = FabricNetwork(torus_graph(6, 2))
        worst_small = max(small.hops(0, d) for d in range(1, 9))
        worst_large = max(large.hops(0, d) for d in range(1, 36))
        assert worst_large > worst_small

    def test_rejects_bad_params(self):
        with pytest.raises(TopologyError):
            torus_graph(1, 2)


class TestFlyProperties:
    """Hypothesis property tests on butterfly structure."""

    def test_all_pairs_reachable_any_k_n(self):
        from hypothesis import given, settings, strategies as st
        import networkx as nx

        @settings(max_examples=15, deadline=None)
        @given(k=st.integers(min_value=2, max_value=4),
               stages=st.integers(min_value=1, max_value=3))
        def check(k, stages):
            fabric = FabricNetwork(fly_graph(k, stages))
            terminals = len(fabric.io_nodes)
            sample = range(0, terminals, max(1, terminals // 6))
            for s in sample:
                for d in sample:
                    if s == d:
                        continue
                    # Uniform path length: stages + 2 servers.
                    assert fabric.hops(s, d) == stages + 2

        check()

    def test_stage_degree_is_k(self):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=10, deadline=None)
        @given(k=st.integers(min_value=2, max_value=5))
        def check(k):
            graph = fly_graph(k, 2)
            for node in graph.nodes:
                if node[0] == "fly" and node[1] == 0:
                    # Interior stage nodes fan out k ways.
                    assert graph.out_degree(node) == k

        check()


class TestLatencyEstimates:
    def test_sec33_1024_port_estimate(self):
        """Sec. 3.3: 1024 ports on current servers -> 2 intermediates per
        port -> 4 servers on a path -> 96 us."""
        estimate = sec33_latency_estimate(1024)
        assert estimate["intermediates_per_port"] == pytest.approx(2.0,
                                                                   rel=0.01)
        assert estimate["servers_on_path"] == 4
        assert estimate["latency_usec"] == pytest.approx(96.0)

    def test_mesh_latency(self):
        fabric = FabricNetwork(mesh_graph(4))
        assert fabric.path_latency_usec(fabric.hops(0, 1)) == pytest.approx(
            48.0)

    def test_current_server_fabric_selection(self):
        mesh = current_server_fabric(16)
        assert mesh.num_servers() == 16
        fly = current_server_fabric(64)
        assert fly.num_servers() > 64  # intermediates appear

    def test_worst_case_vlb_latency_bounded(self):
        fabric = FabricNetwork(mesh_graph(8))
        # Two-phase through a mesh: at most 3 servers -> 72 us.
        assert fabric.worst_case_vlb_latency_usec() == pytest.approx(72.0)
