"""Fairness through a contended output (the second switching guarantee,
Sec. 3.1): each input gets its fair share of an oversubscribed output."""

import pytest

from repro.core import RouteBricksRouter
from repro.core.switching import check_fairness, jain_index
from repro.workloads import FixedSizeWorkload


def _hotspot_events(num_senders=3, packets_each=3000, packet_bytes=740,
                    rate_bps_each=6e9):
    """Senders 1..3 each blast node 0's output at 6 Gbps (18 Gbps toward a
    10 Gbps line), with Poisson arrivals so no sender is phase-aligned
    with the drop-tail queue."""
    import random
    events = []
    mean_gap = packet_bytes * 8 / rate_bps_each
    for sender in range(1, num_senders + 1):
        rng = random.Random(100 + sender)
        workload = FixedSizeWorkload(packet_bytes=packet_bytes, num_flows=16,
                                     seed=sender)
        now = 0.0
        for packet in workload.packets(packets_each):
            now += rng.expovariate(1.0 / mean_gap)
            packet.annotations["sender"] = sender
            events.append((now, sender, 0, packet))
    events.sort(key=lambda e: (e[0], e[3].packet_id))
    return events


class TestFairness:
    def test_contended_output_shares_are_fair(self):
        router = RouteBricksRouter(seed=9)
        sim_events = _hotspot_events()
        shares = {1: 0, 2: 0, 3: 0}
        sim, nodes = router.build_simulation(rate_limited_egress=True)
        nodes[0].egress_callback = (
            lambda p, now: shares.__setitem__(
                p.annotations["sender"], shares[p.annotations["sender"]] + 1))
        for t, ingress, egress, packet in sim_events:
            sim.schedule_at(t, lambda n=nodes[ingress], p=packet:
                            n.ingress(p, 0))
        sim.run()
        delivered = sum(shares.values())
        offered = len(sim_events)
        # The 10G line cannot carry 18G: drops occurred...
        assert delivered < offered
        # ...but the survivors split fairly across inputs.
        assert check_fairness(shares, tolerance=0.2)
        assert jain_index(shares) > 0.98

    def test_egress_link_enforces_line_rate(self):
        router = RouteBricksRouter(seed=9)
        events = _hotspot_events(packets_each=2000)
        report = router.simulate(events, rate_limited_egress=True)
        duration = max(t for t, _, _, _ in _hotspot_events(packets_each=2000))
        delivered_bps = report.delivered_packets * 740 * 8 / duration
        # Output line pinned at ~10 Gbps.
        assert delivered_bps == pytest.approx(10e9, rel=0.1)
        assert report.dropped_packets > 0

    def test_no_drops_when_admissible(self):
        router = RouteBricksRouter(seed=9)
        events = _hotspot_events(rate_bps_each=2.5e9, packets_each=1000)
        report = router.simulate(events, rate_limited_egress=True)
        assert report.dropped_packets == 0
        assert report.delivered_packets == report.offered_packets
