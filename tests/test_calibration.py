"""Calibration self-consistency: the derived constants must reproduce the
paper's published operating points (the anchors everything else rests on)."""

import pytest

from repro import calibration as cal
from repro.units import to_gbps, to_mpps


def _rate_bps(cycles_per_packet, packet_bytes=64):
    pps = cal.NEHALEM_TOTAL_CYCLES_PER_SEC / cycles_per_packet
    return pps * packet_bytes * 8


class TestBatchingModel:
    @pytest.mark.parametrize("kp,kn,paper_gbps", [
        (1, 1, 1.46), (32, 1, 4.97), (32, 16, 9.77)])
    def test_table1_operating_points(self, kp, kn, paper_gbps):
        cycles = (cal.MINIMAL_FORWARDING.cpu_cycles(64)
                  + cal.bookkeeping_cycles(kp, kn))
        assert to_gbps(_rate_bps(cycles)) == pytest.approx(paper_gbps,
                                                           rel=0.01)

    def test_base_matches_infinite_batching(self):
        # At infinite batch sizes only the application cost remains.
        assert cal.MINIMAL_FORWARDING.cpu_cycles(64) == pytest.approx(
            cal.BOOK_BASE_CYCLES, rel=0.001)

    def test_bookkeeping_monotone_in_batch_size(self):
        assert cal.bookkeeping_cycles(1, 1) > cal.bookkeeping_cycles(32, 1) \
            > cal.bookkeeping_cycles(32, 16)

    def test_bookkeeping_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            cal.bookkeeping_cycles(0, 1)
        with pytest.raises(ValueError):
            cal.bookkeeping_cycles(1, 0)


class TestApplicationCosts:
    @pytest.mark.parametrize("app,paper_gbps", [
        (cal.MINIMAL_FORWARDING, 9.77),
        (cal.IP_ROUTING, 6.35),
        (cal.IPSEC, 1.40)])
    def test_64b_saturation_rates(self, app, paper_gbps):
        cycles = app.cpu_cycles(64) + cal.DEFAULT_BOOKKEEPING_CYCLES
        assert to_gbps(_rate_bps(cycles)) == pytest.approx(paper_gbps,
                                                           rel=0.01)

    def test_forwarding_64b_mpps(self):
        cycles = (cal.MINIMAL_FORWARDING.cpu_cycles(64)
                  + cal.DEFAULT_BOOKKEEPING_CYCLES)
        mpps = to_mpps(cal.NEHALEM_TOTAL_CYCLES_PER_SEC / cycles)
        # Paper: 18.96 Mpps (9.7 Gbps quoted as 9.77 in Table 1).
        assert mpps == pytest.approx(19.0, abs=0.2)

    def test_cpu_scaling_ratio_1024_vs_64(self):
        # Sec 5.3 item 2: 1024 B costs 1.6x the CPU load of 64 B.
        book = cal.DEFAULT_BOOKKEEPING_CYCLES
        small = cal.MINIMAL_FORWARDING.cpu_cycles(64) + book
        large = cal.MINIMAL_FORWARDING.cpu_cycles(1024) + book
        assert large / small == pytest.approx(1.6, rel=0.01)

    def test_memory_scaling_ratio(self):
        ratio = (cal.MINIMAL_FORWARDING.mem_bytes(1024)
                 / cal.MINIMAL_FORWARDING.mem_bytes(64))
        assert ratio == pytest.approx(6.0, rel=0.01)

    def test_io_scaling_ratio(self):
        ratio = (cal.MINIMAL_FORWARDING.io_bytes(1024)
                 / cal.MINIMAL_FORWARDING.io_bytes(64))
        assert ratio == pytest.approx(11.0, rel=0.01)

    def test_routing_costs_exceed_forwarding(self):
        assert cal.IP_ROUTING.cpu_cycles(64) > cal.MINIMAL_FORWARDING.cpu_cycles(64)
        assert cal.IP_ROUTING.mem_bytes(64) > cal.MINIMAL_FORWARDING.mem_bytes(64)

    def test_ipsec_dominated_by_per_byte_cost(self):
        # Encryption scales with bytes: the 1500 B cost is mostly per-byte.
        cost = cal.IPSEC.cpu_cycles(1500)
        per_byte_part = cal.IPSEC.cpu_per_byte_cycles * 1500
        assert per_byte_part > 0.85 * (cost - cal.IPSEC.cpu_base_cycles)

    def test_table3_reported_values(self):
        assert cal.MINIMAL_FORWARDING.instructions_per_packet == 1033
        assert cal.IP_ROUTING.instructions_per_packet == 1512
        assert cal.IPSEC.instructions_per_packet == 14221
        assert cal.IPSEC.cycles_per_instruction == 0.55


class TestHardwareConstants:
    def test_cycle_budget(self):
        assert cal.NEHALEM_TOTAL_CYCLES_PER_SEC == pytest.approx(22.4e9)

    def test_nic_limits(self):
        assert to_gbps(cal.MAX_INPUT_BPS) == pytest.approx(24.6)

    def test_max_nic_batch_from_pcie(self):
        # 256 B max payload / 16 B descriptor = 16 (Table 1 caption).
        assert cal.MAX_NIC_BATCH == 16

    def test_latency_decomposition(self):
        # 4 x 2.56 + 12.8 + 0.8 = 24 us (Sec. 6.2, rounded).
        assert cal.INPUT_NODE_LATENCY_USEC == pytest.approx(23.84)

    def test_abilene_ipsec_consistency(self):
        """The Abilene mean size and IPsec per-byte cost jointly give the
        paper's 4.45 Gbps Abilene IPsec rate."""
        mean = cal.ABILENE_MEAN_PACKET_BYTES
        cycles = cal.IPSEC.cpu_cycles(mean) + cal.DEFAULT_BOOKKEEPING_CYCLES
        rate = _rate_bps(cycles, mean)
        assert to_gbps(rate) == pytest.approx(4.45, rel=0.01)
