"""Tests for the analytic-vs-DES cross-validation harness."""

import pytest

from repro.analysis.validation import (
    ValidationPoint,
    max_relative_error,
    validate_forwarding,
)
from repro.errors import ConfigurationError


class TestValidation:
    def test_models_agree_on_default_grid(self):
        points = validate_forwarding(
            grid=[(32, 16, 64), (1, 1, 64)], tolerance_bps=0.3e9)
        assert max_relative_error(points) < 0.12

    def test_point_fields(self):
        (point,) = validate_forwarding(grid=[(32, 16, 64)],
                                       tolerance_bps=0.5e9)
        assert point.kp == 32 and point.kn == 16
        assert point.analytic_gbps == pytest.approx(9.77, rel=0.01)
        assert point.simulated_gbps > 0

    def test_relative_error_math(self):
        point = ValidationPoint(kp=1, kn=1, packet_bytes=64,
                                analytic_gbps=10.0, simulated_gbps=9.0)
        assert point.relative_error == pytest.approx(0.1)
        degenerate = ValidationPoint(kp=1, kn=1, packet_bytes=64,
                                     analytic_gbps=0.0, simulated_gbps=1.0)
        with pytest.raises(ConfigurationError):
            degenerate.relative_error

    def test_empty_points_rejected(self):
        with pytest.raises(ConfigurationError):
            max_relative_error([])
