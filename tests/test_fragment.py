"""Tests for IPv4 fragmentation and reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PacketError
from repro.net import Packet
from repro.net.fragment import (
    FLAG_DF,
    FLAG_MF,
    Reassembler,
    fragment_packet,
)


def _big_packet(payload_bytes=3000, ident=42):
    payload = bytes(range(256)) * (payload_bytes // 256 + 1)
    packet = Packet.udp("10.0.0.1", "10.0.0.2",
                        length=14 + 20 + 8 + payload_bytes,
                        payload=payload[:payload_bytes])
    packet.ip.identification = ident
    return packet


class TestFragmentation:
    def test_small_packet_unchanged(self):
        packet = Packet.udp("1.1.1.1", "2.2.2.2", length=200)
        assert fragment_packet(packet, mtu=1500) == [packet]

    def test_fragment_sizes_and_offsets(self):
        packet = _big_packet(3000)
        fragments = fragment_packet(packet, mtu=1500)
        assert len(fragments) >= 3
        # All but the last carry MF; offsets are contiguous 8-byte units.
        offset = 0
        for index, fragment in enumerate(fragments):
            assert fragment.ip.fragment_offset == offset // 8
            payload_len = fragment.ip.total_length - 20
            if index < len(fragments) - 1:
                assert fragment.ip.flags & FLAG_MF
                assert payload_len % 8 == 0
            offset += payload_len
        assert not fragments[-1].ip.flags & FLAG_MF

    def test_total_payload_preserved(self):
        packet = _big_packet(2900)
        fragments = fragment_packet(packet, mtu=1000)
        total = sum(f.ip.total_length - 20 for f in fragments)
        assert total == packet.ip.total_length - 20

    def test_df_raises(self):
        packet = _big_packet(3000)
        packet.ip.flags = FLAG_DF
        with pytest.raises(PacketError):
            fragment_packet(packet, mtu=1500)

    def test_tiny_mtu_rejected(self):
        with pytest.raises(PacketError):
            fragment_packet(_big_packet(), mtu=60)

    def test_ident_copied(self):
        fragments = fragment_packet(_big_packet(3000, ident=77), mtu=1500)
        assert all(f.ip.identification == 77 for f in fragments)


class TestReassembly:
    def test_round_trip(self):
        packet = _big_packet(2500)
        original_bytes = packet.pack()[34:]
        reassembler = Reassembler()
        fragments = fragment_packet(packet, mtu=900)
        whole = None
        for fragment in fragments:
            whole = reassembler.offer(fragment)
        assert whole is not None
        assert whole.payload == original_bytes[:len(whole.payload)]
        assert whole.ip.total_length == packet.ip.total_length
        assert reassembler.completed == 1
        assert reassembler.pending() == 0

    def test_out_of_order_reassembly(self):
        packet = _big_packet(2500)
        fragments = fragment_packet(packet, mtu=900)
        reassembler = Reassembler()
        whole = None
        for fragment in reversed(fragments):
            whole = reassembler.offer(fragment) or whole
        assert whole is not None

    def test_missing_fragment_stays_pending(self):
        fragments = fragment_packet(_big_packet(2500), mtu=900)
        reassembler = Reassembler()
        for fragment in fragments[:-1]:
            assert reassembler.offer(fragment) is None or \
                fragment is fragments[0]
        # Last fragment never arrives.
        assert reassembler.pending() == 1

    def test_unfragmented_passthrough(self):
        reassembler = Reassembler()
        packet = Packet.udp("1.1.1.1", "2.2.2.2", length=100)
        assert reassembler.offer(packet) is packet

    def test_interleaved_flows(self):
        a = fragment_packet(_big_packet(2000, ident=1), mtu=800)
        b = fragment_packet(_big_packet(2000, ident=2), mtu=800)
        reassembler = Reassembler()
        done = []
        for fa, fb in zip(a, b):
            for fragment in (fa, fb):
                result = reassembler.offer(fragment)
                if result is not None:
                    done.append(result)
        assert len(done) == 2
        assert {p.ip.identification for p in done} == {1, 2}

    def test_timeout_expiry(self):
        fragments = fragment_packet(_big_packet(2500), mtu=900)
        reassembler = Reassembler(timeout_sec=1.0)
        reassembler.offer(fragments[0], now=0.0)
        assert reassembler.expire(now=0.5) == 0
        assert reassembler.expire(now=2.0) == 1
        assert reassembler.timed_out == 1

class TestFragmenterElement:
    def _build(self, mtu=1000):
        from repro.click import CounterElement, Discard
        from repro.click.elements.fragment import IPFragmenter
        element = IPFragmenter(mtu=mtu)
        out = CounterElement(name="frag-out")
        icmp = CounterElement(name="frag-icmp")
        out.connect_to(Discard(name="frag-d0"))
        icmp.connect_to(Discard(name="frag-d1"))
        element.connect_to(out, output=0)
        element.connect_to(icmp, output=1)
        return element, out, icmp

    def test_fragments_flow_out(self):
        element, out, icmp = self._build(mtu=1000)
        element.receive(_big_packet(2500))
        assert out.count >= 3
        assert element.fragmented_packets == 1
        assert icmp.count == 0

    def test_small_packets_pass(self):
        element, out, _ = self._build(mtu=1500)
        element.receive(Packet.udp("1.1.1.1", "2.2.2.2", length=200))
        assert out.count == 1
        assert element.fragmented_packets == 0

    def test_df_generates_icmp(self):
        element, out, icmp = self._build(mtu=1000)
        packet = _big_packet(2500)
        packet.ip.flags = FLAG_DF
        element.receive(packet)
        assert icmp.count == 1
        assert out.count == 0
        assert element.df_rejections == 1

    def test_fragment_then_reassemble_through_element(self):
        element, out, _ = self._build(mtu=900)
        captured = []
        # Swap the sink for a capturing one.
        out.process = lambda packet, port: captured.append(packet)
        packet = _big_packet(2600, ident=9)
        element.receive(packet)
        reassembler = Reassembler()
        whole = None
        for fragment in captured:
            result = reassembler.offer(fragment)
            if result is not None:
                whole = result
        assert whole is not None
        assert whole.ip.identification == 9

    def test_bad_mtu(self):
        from repro.click.elements.fragment import IPFragmenter
        with pytest.raises(Exception):
            IPFragmenter(mtu=40)


class TestFragmentProperties:
    @settings(max_examples=25, deadline=None)
    @given(payload=st.integers(min_value=100, max_value=4000),
           mtu=st.integers(min_value=96, max_value=1500))
    def test_fragment_reassemble_property(self, payload, mtu):
        packet = _big_packet(payload)
        fragments = fragment_packet(packet, mtu=mtu)
        reassembler = Reassembler()
        whole = None
        for fragment in fragments:
            result = reassembler.offer(fragment)
            if result is not None:
                whole = result
        assert whole is not None
        assert whole.ip.total_length == packet.ip.total_length
