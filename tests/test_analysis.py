"""Tests for bottleneck deconstruction, reports, and experiment runners."""

import math

import pytest

from repro import calibration as cal
from repro.analysis import (
    EXPERIMENTS,
    cpu_load_from_polling,
    deconstruct,
    format_series,
    format_table,
    load_series,
    run_experiment,
)
from repro.analysis.report import paper_vs_measured


class TestDeconstruction:
    def test_cpu_is_the_bottleneck_for_all_apps(self):
        """Sec. 5.3 conclusion 1: the CPUs bind for all three apps at 64 B."""
        for app in cal.APPLICATIONS.values():
            report = deconstruct(app, 64)
            assert report.bottleneck == "cpu", app.name

    def test_cpu_headroom_is_one_at_saturation(self):
        report = deconstruct(cal.MINIMAL_FORWARDING, 64)
        assert report.headroom("cpu") == pytest.approx(1.0, rel=1e-6)

    def test_buses_have_headroom(self):
        """Sec. 5.3 conclusion 3: memory and I/O are not the limiters."""
        for app in cal.APPLICATIONS.values():
            report = deconstruct(app, 64)
            for component in ("memory", "io", "qpi"):
                assert report.headroom(component) > 1.2, (app.name, component)

    def test_load_series_constant_loads_falling_bounds(self):
        """Sec. 5.3 conclusion 4: per-packet load is flat in input rate."""
        rows = load_series(cal.IP_ROUTING, 64, rates_mpps=[2, 10, 20])
        loads = {row["cpu_load"] for row in rows}
        assert len(loads) == 1
        bounds = [row["cpu_empirical_bound"] for row in rows]
        assert bounds == sorted(bounds, reverse=True)

    def test_load_series_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            load_series(cal.IP_ROUTING, 64, rates_mpps=[0])


class TestEmptyPollCorrection:
    def test_subtracts_empty_poll_cycles(self):
        # 1e9 cycles, 1e6 packets, 1e6 empty polls at 120 cycles each.
        load = cpu_load_from_polling(1e9, int(1e6), int(1e6))
        assert load == pytest.approx((1e9 - 120e6) / 1e6)

    def test_zero_empty_polls(self):
        assert cpu_load_from_polling(1e9, 1000, 0) == pytest.approx(1e6)

    def test_rejects_impossible_inputs(self):
        with pytest.raises(ValueError):
            cpu_load_from_polling(100, 10, 1000)
        with pytest.raises(ValueError):
            cpu_load_from_polling(100, 0, 0)


class TestReports:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}],
                            ["a", "b"], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], ["a"])

    def test_format_series(self):
        text = format_series("s", [1, 2], [3.0, 4.0], "x", "y")
        assert "3.000" in text

    def test_paper_vs_measured_ratio(self):
        text = paper_vs_measured([
            {"metric": "m", "paper": 10.0, "measured": 12.0}])
        assert "1.200" in text


class TestExperiments:
    @pytest.mark.parametrize("eid", sorted(set(EXPERIMENTS) - {"RB4-R"}))
    def test_runner_produces_output(self, eid):
        result = run_experiment(eid)
        assert result["id"] == eid
        payload = [v for k, v in result.items() if k != "id"]
        assert payload

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("F99")

    def test_t1_measured_matches_paper(self):
        rows = run_experiment("T1")["rows"]
        for row in rows:
            assert row["rate_gbps"] == pytest.approx(row["paper_gbps"],
                                                     rel=0.01)

    def test_f8_64b_matches_paper(self):
        rows = run_experiment("F8")["app_rows"]
        for row in rows:
            assert row["rate_64b_gbps"] == pytest.approx(
                row["paper_64b_gbps"], rel=0.02)
            assert row["rate_abilene_gbps"] == pytest.approx(
                row["paper_abilene_gbps"], rel=0.02)

    def test_f10_all_non_bottlenecks_have_headroom(self):
        result = run_experiment("F10")
        for row in result["rows"]:
            if not math.isinf(row["headroom"]):
                assert row["headroom"] > 1.0

    def test_rb4_latency_close_to_paper(self):
        rows = run_experiment("RB4-L")["rows"]
        for row in rows:
            assert row["measured_usec"] == pytest.approx(row["paper_usec"],
                                                         rel=0.02)

    def test_rb4_reordering_shape(self):
        """Flowlets reduce reordering by >10x (slow: full DES run)."""
        rows = {r["mode"]: r for r in
                run_experiment("RB4-R")["rows"]}
        assert rows["per-packet"]["reordered_pct"] > \
            10 * rows["flowlets"]["reordered_pct"]
        assert rows["flowlets"]["reordered_pct"] < 1.0
        assert rows["per-packet"]["reordered_pct"] > 1.0
