"""Tests for IPv4/MAC addresses and prefixes."""

import pytest

from repro.errors import PacketError, RoutingError
from repro.net import IPv4Address, MACAddress, Prefix


class TestIPv4Address:
    def test_parse_and_str_round_trip(self):
        addr = IPv4Address("192.168.1.200")
        assert str(addr) == "192.168.1.200"
        assert int(addr) == (192 << 24) | (168 << 16) | (1 << 8) | 200

    def test_bytes_round_trip(self):
        addr = IPv4Address("10.0.0.1")
        assert IPv4Address.from_bytes(addr.to_bytes()) == addr

    def test_equality_with_int(self):
        assert IPv4Address("0.0.0.1") == 1

    def test_ordering(self):
        assert IPv4Address("1.0.0.0") < IPv4Address("2.0.0.0")

    def test_hashable(self):
        assert len({IPv4Address("1.2.3.4"), IPv4Address("1.2.3.4")}) == 1

    def test_immutable(self):
        addr = IPv4Address(0)
        with pytest.raises(AttributeError):
            addr.value = 5

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.256", "a.b.c.d",
                                     "1.2.3.4.5", -1, 1 << 32])
    def test_rejects_malformed(self, bad):
        with pytest.raises(PacketError):
            IPv4Address(bad)

    def test_copy_constructor(self):
        a = IPv4Address("9.9.9.9")
        assert IPv4Address(a) == a


class TestMACAddress:
    def test_parse_and_str_round_trip(self):
        mac = MACAddress("02:00:00:00:00:2a")
        assert str(mac) == "02:00:00:00:00:2a"
        assert int(mac) == 0x02000000002A

    def test_bytes_round_trip(self):
        mac = MACAddress(0xAABBCCDDEEFF)
        assert MACAddress.from_bytes(mac.to_bytes()) == mac

    def test_node_id_encoding_round_trip(self):
        base = MACAddress("02:00:00:00:00:00")
        for node in (0, 1, 7, 63, 255):
            assert base.with_node_id(node).node_id() == node

    def test_node_id_preserves_high_bytes(self):
        base = MACAddress("02:aa:bb:cc:dd:ee")
        encoded = base.with_node_id(3)
        assert int(encoded) >> 8 == int(base) >> 8

    def test_node_id_out_of_range(self):
        with pytest.raises(PacketError):
            MACAddress(0).with_node_id(256)

    @pytest.mark.parametrize("bad", ["02:00:00:00:00", "zz:00:00:00:00:00"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(PacketError):
            MACAddress(bad)


class TestPrefix:
    def test_parse(self):
        p = Prefix.parse("10.1.0.0/16")
        assert str(p) == "10.1.0.0/16"
        assert p.length == 16

    def test_contains(self):
        p = Prefix.parse("10.1.0.0/16")
        assert p.contains("10.1.200.200")
        assert not p.contains("10.2.0.0")

    def test_zero_length_contains_everything(self):
        p = Prefix(0, 0)
        assert p.contains("255.255.255.255")
        assert p.contains(0)

    def test_host_bits_rejected(self):
        with pytest.raises(RoutingError):
            Prefix("10.1.0.1", 16)

    def test_from_address_truncates(self):
        p = Prefix.from_address("10.1.2.3", 16)
        assert p == Prefix.parse("10.1.0.0/16")

    def test_slash32(self):
        p = Prefix.parse("1.2.3.4/32")
        assert p.contains("1.2.3.4")
        assert not p.contains("1.2.3.5")

    @pytest.mark.parametrize("bad_len", [-1, 33])
    def test_bad_lengths(self, bad_len):
        with pytest.raises(RoutingError):
            Prefix(0, bad_len)

    def test_hash_eq(self):
        assert len({Prefix.parse("10.0.0.0/8"), Prefix.parse("10.0.0.0/8")}) == 1
