"""Fault injection through the cluster DES (repro.faults.inject).

The paper's claim under test (Sec. 3.2): when servers or internal links
die, Direct VLB re-balances around them on purely local information and
the cluster degrades instead of collapsing.
"""

import pytest

from repro.core import RouteBricksRouter
from repro.core.control import ClusterManager
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultSchedule
from repro.workloads import FixedSizeWorkload, WorkloadSpec
from repro.workloads.matrices import uniform_matrix


def _pair_events(packets=1200, ingress=0, egress=1, seed=7):
    workload = FixedSizeWorkload(packet_bytes=740, num_flows=32, seed=seed)
    gap = 1e-6
    return [(index * gap, ingress, egress, packet)
            for index, packet in enumerate(workload.packets(packets))]


def _uniform_workload(num_nodes=4, load_bps=3e9, seed=0):
    return WorkloadSpec.fixed(740, app="forwarding", seed=seed).with_matrix(
        uniform_matrix(num_nodes, load_bps))


def _managed_cluster(num_nodes=4):
    manager = ClusterManager()
    for port in range(num_nodes):
        manager.add_node(external_port=port)
        manager.announce("10.%d.0.0/16" % port, port)
    manager.push_fibs()
    return manager


class TestNodeCrash:
    def test_crash_mid_run_never_crashes_or_deadlocks(self):
        router = RouteBricksRouter(seed=1)
        schedule = FaultSchedule().crash_node(at=0.5e-3, node=3)
        report = router.simulate(_uniform_workload(), until=1.5e-3,
                                 faults=schedule)
        assert report.fault_events == 1
        # Conservation: every offered packet is delivered, dropped, or
        # still in flight at the horizon -- nothing vanishes or doubles.
        assert report.delivered_packets + report.dropped_packets \
            <= report.offered_packets
        assert report.delivered_packets > 0
        assert report.dropped_packets > 0

    def test_in_flight_packets_on_dying_node_counted_as_losses(self):
        router = RouteBricksRouter(seed=2)
        baseline = router.simulate(_uniform_workload(), until=1.5e-3)
        faulty = RouteBricksRouter(seed=2).simulate(
            _uniform_workload(),
            until=1.5e-3,
            faults=FaultSchedule().crash_node(at=0.5e-3, node=3))
        assert faulty.dropped_packets > baseline.dropped_packets
        assert faulty.delivered_packets < baseline.delivered_packets

    def test_survivors_rebalance_around_failed_intermediate(self):
        # All 0 -> 1 traffic is indirect (direct cable dead from t=0);
        # node 2 then dies mid-run, so flowlets pinned to it must spill
        # to node 3 -- the only intermediate left.
        router = RouteBricksRouter(seed=3)
        schedule = FaultSchedule().crash_node(at=0.4e-3, node=2)
        report = router.simulate(_pair_events(), failed_links=[(0, 1)],
                                 faults=schedule,
                                 detection_latency_sec=20e-6)
        stats = {s["node"]: s for s in report.node_stats}
        assert stats[3]["intermediate"] > 0
        # Most traffic survives: only packets in the detection window and
        # in flight through node 2 are lost.
        assert report.delivered_packets > 0.8 * report.offered_packets
        assert report.flowlet_spills > 0

    def test_faults_accept_dict_form(self):
        router = RouteBricksRouter(seed=1)
        report = router.simulate(
            _pair_events(packets=200),
            faults=[{"time": 0.1e-3, "kind": "node_down", "node": 3}])
        assert report.fault_events == 1

    def test_out_of_range_fault_rejected(self):
        router = RouteBricksRouter(seed=1)
        with pytest.raises(ConfigurationError):
            router.simulate(_pair_events(packets=10),
                            faults=FaultSchedule().crash_node(at=0.0,
                                                              node=9))


class TestRecovery:
    def test_recovered_node_carries_traffic_again(self):
        router = RouteBricksRouter(seed=4)
        schedule = (FaultSchedule()
                    .crash_node(at=0.3e-3, node=3)
                    .recover_node(at=0.8e-3, node=3))
        report = router.simulate(_uniform_workload(seed=4), until=2e-3,
                                 faults=schedule,
                                 detection_latency_sec=50e-6)
        stats = {s["node"]: s for s in report.node_stats}
        # Node 3 forwarded external traffic after its reboot.
        assert stats[3]["egress"] > 0
        assert report.fault_events == 2

    def test_reconvergence_after_recovery(self):
        router = RouteBricksRouter(seed=5)
        manager = _managed_cluster()
        schedule = (FaultSchedule()
                    .crash_node(at=0.3e-3, node=2)
                    .recover_node(at=0.9e-3, node=2))
        report = router.simulate(
            _uniform_workload(seed=5), until=2e-3, faults=schedule,
            manager=manager,
            detection_latency_sec=100e-6, fib_push_latency_sec=50e-6)
        events = [(r.event, r.live_nodes) for r in report.convergence]
        assert events == [("node_down", 3), ("node_up", 4)]
        down, up = report.convergence
        assert down.convergence_sec == pytest.approx(150e-6)
        assert up.convergence_sec == pytest.approx(150e-6)
        # After the full cycle the control plane is whole again.
        assert manager.failed_nodes() == []
        assert manager.stale_nodes() == []


class TestLinkFaults:
    def test_link_down_detours_and_link_up_restores(self):
        router = RouteBricksRouter(seed=6)
        schedule = (FaultSchedule()
                    .fail_link(at=0.2e-3, src=0, dst=1)
                    .restore_link(at=0.7e-3, src=0, dst=1))
        report = router.simulate(_pair_events(), faults=schedule)
        assert report.indirect_packets > 0      # detoured while cut
        assert report.direct_packets > 0        # direct before/after
        assert report.delivered_packets + report.dropped_packets == \
            report.offered_packets

    def test_flapping_link_keeps_cluster_alive(self):
        router = RouteBricksRouter(seed=7)
        schedule = FaultSchedule().flap_link(0, 1, start=0.1e-3,
                                             period_sec=0.3e-3, count=3)
        report = router.simulate(_pair_events(), faults=schedule)
        assert report.fault_events == 6
        assert report.delivered_packets > 0.9 * report.offered_packets


class TestNicStall:
    def test_stall_delays_but_does_not_unplug(self):
        router = RouteBricksRouter(seed=8)
        baseline = router.simulate(_pair_events(seed=9))
        stalled = RouteBricksRouter(seed=8).simulate(
            _pair_events(seed=9),
            faults=FaultSchedule().stall_nic(at=0.2e-3, node=0,
                                             duration_sec=0.3e-3))
        assert stalled.fault_events == 1
        assert stalled.latency_usec.percentile(99) > \
            baseline.latency_usec.percentile(99)
        # Everything accounted for; stall is congestion, not a cut.
        assert stalled.delivered_packets + stalled.dropped_packets == \
            stalled.offered_packets


class TestInjectorValidation:
    def test_negative_latency_rejected(self):
        router = RouteBricksRouter(seed=1)
        sim, nodes = router.build_simulation()
        with pytest.raises(ConfigurationError):
            FaultInjector(sim, nodes, FaultSchedule(),
                          detection_latency_sec=-1.0)

    def test_node_recovery_does_not_resurrect_cut_cable(self):
        router = RouteBricksRouter(seed=1)
        sim, nodes = router.build_simulation()
        schedule = (FaultSchedule()
                    .fail_link(at=0.1e-3, src=0, dst=1)
                    .crash_node(at=0.2e-3, node=1)
                    .recover_node(at=0.4e-3, node=1))
        FaultInjector(sim, nodes, schedule, detection_latency_sec=10e-6)
        sim.run(until=1e-3)
        # The independently cut cable 0 -> 1 stays down after node 1's
        # recovery; other peers re-admit node 1.
        assert 1 in nodes[0].failed_hops
        assert 1 not in nodes[2].failed_hops
