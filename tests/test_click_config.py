"""Tests for the Click configuration-language parser."""

import pytest

from repro.click.config import (
    ElementRegistry,
    default_registry,
    parse_config,
    tokenize,
)
from repro.click.elements.standard import CounterElement
from repro.errors import ConfigurationError
from repro.net import Packet


def _udp(length=64):
    return Packet.udp("10.0.0.1", "10.0.0.2", length=length)


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("a :: B(1, 2); a -> [0] c;")
        kinds = [k for k, _ in tokens]
        assert "dcolon" in kinds and "arrow" in kinds and "port" in kinds

    def test_comments_stripped(self):
        tokens = tokenize("// comment\n a :: B; /* multi\nline */ ;")
        assert all(value != "comment" for _, value in tokens)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            tokenize("a :: B; $$$")


class TestParsing:
    def test_declaration_and_chain(self):
        graph = parse_config("""
            c :: Counter;
            c -> Discard;
        """)
        assert "c" in graph
        graph["c"].receive(_udp())
        assert graph["c"].count == 1

    def test_chain_with_ports(self):
        graph = parse_config("""
            t :: Tee(2);
            a :: Counter;
            b :: Counter;
            t [0] -> a -> Discard;
            t [1] -> b -> Discard;
        """)
        graph["t"].receive(_udp())
        assert graph["a"].count == 1
        assert graph["b"].count == 1

    def test_anonymous_elements(self):
        graph = parse_config("Counter -> Counter -> Discard;",
                             validate=True)
        counters = [e for e in graph.elements()
                    if isinstance(e, CounterElement)]
        assert len(counters) == 2

    def test_args_parsed(self):
        graph = parse_config("""
            q :: Queue(5);
            q -> Discard;  // note: Queue is pull; wiring is formal here
        """, validate=False)
        assert graph["q"].fifo.capacity == 5

    def test_sampling_pipeline_behaves(self):
        graph = parse_config("""
            s :: RandomSample(0.5);
            c :: Counter;
            s -> c -> Discard;
        """)
        for _ in range(1000):
            graph["s"].receive(_udp())
        assert 350 < graph["c"].count < 650

    def test_validation_catches_dangling(self):
        with pytest.raises(ConfigurationError):
            parse_config("c :: Counter;")

    def test_undeclared_element(self):
        with pytest.raises(ConfigurationError):
            parse_config("a -> Discard;")

    def test_unknown_class(self):
        with pytest.raises(ConfigurationError):
            parse_config("x :: Warp9; x -> Discard;")

    def test_duplicate_declaration(self):
        with pytest.raises(ConfigurationError):
            parse_config("a :: Counter; a :: Counter; a -> Discard;")

    def test_multiline_comment_spanning_statements(self):
        graph = parse_config("""
            a :: Counter; /* the
            whole thing */ a -> Discard;
        """)
        assert "a" in graph


class TestRegistry:
    def test_custom_registration(self):
        registry = default_registry()

        class Mine(CounterElement):
            pass

        registry.register("Mine", lambda args, name: Mine(name=name))
        graph = parse_config("m :: Mine; m -> Discard;", registry=registry)
        assert isinstance(graph["m"], Mine)

    def test_double_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(ConfigurationError):
            registry.register("Discard", lambda args, name: None)

    def test_contains(self):
        assert "Discard" in default_registry()
        assert "Nope" not in default_registry()
