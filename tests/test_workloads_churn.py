"""Tests for the routing-churn workload and FIB consistency under churn."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.routing import BinaryTrie, RoutingTable, generate_rib
from repro.workloads.churn import ChurnGenerator, Update


@pytest.fixture
def table():
    return generate_rib(num_entries=300, num_ports=4, seed=1)


class TestChurnGenerator:
    def test_update_mix(self, table):
        gen = ChurnGenerator(table, withdraw_fraction=0.3,
                             reannounce_fraction=0.4, seed=2)
        updates = list(gen.updates(500))
        withdrawals = sum(1 for u in updates if u.is_withdrawal)
        assert 100 < withdrawals < 200  # ~30 %

    def test_apply_keeps_table_consistent(self, table):
        size_before = len(table)
        gen = ChurnGenerator(table, seed=3)
        stats = gen.apply(400)
        assert stats["withdraw_misses"] == 0
        assert len(table) == (size_before + stats["announced"]
                              - stats["withdrawn"])

    def test_withdrawn_prefixes_stop_matching_exactly(self, table):
        gen = ChurnGenerator(table, withdraw_fraction=1.0,
                             reannounce_fraction=0.0, seed=4)
        removed = [u.prefix for u in gen.updates(50)]
        for prefix in removed:
            table.remove_route(prefix)
        for prefix in removed:
            assert not table.has_route(prefix)

    def test_deterministic(self, table):
        a = [u.prefix for u in ChurnGenerator(table, seed=5).updates(50)]
        b = [u.prefix for u in ChurnGenerator(
            generate_rib(num_entries=300, num_ports=4, seed=1),
            seed=5).updates(50)]
        assert a == b

    def test_bad_fractions(self, table):
        with pytest.raises(ConfigurationError):
            ChurnGenerator(table, withdraw_fraction=0.8,
                           reannounce_fraction=0.5)
        with pytest.raises(ConfigurationError):
            ChurnGenerator(table, withdraw_fraction=-0.1)

    def test_update_dataclass(self, table):
        prefix = next(iter(dict(table.routes())))
        assert Update(prefix=prefix, route=None).is_withdrawal
        assert not Update(prefix=prefix, route="r").is_withdrawal


class TestChurnedFibAgreesWithOracle:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=99))
    def test_dir24_8_matches_trie_after_churn(self, seed):
        """Property: after an arbitrary churn episode, the DIR-24-8 FIB
        agrees with a trie replaying the same final route set."""
        table = generate_rib(num_entries=60, num_ports=3, seed=seed)
        gen = ChurnGenerator(table, seed=seed + 1)
        gen.apply(120)
        oracle = BinaryTrie()
        for prefix, route in table.routes():
            oracle.insert(prefix, route)
        import random
        rng = random.Random(seed + 2)
        for _ in range(200):
            probe = rng.getrandbits(32)
            assert table.lookup(probe) == oracle.lookup(probe), hex(probe)
