"""Partitioned parallel DES: equivalence, determinism, and plumbing.

The contract under test (the reproduction's analogue of RouteBricks'
"adding servers must not change what the router computes"): sharding the
cluster simulation across partitions is an *execution* strategy, not a
*model* change.  Fault-free RB4 runs must merge to bit-identical reports
and metric snapshots at any worker count, on either backend; fault runs
must agree on every report scalar.
"""

import json
import pickle

import pytest

from repro.core import RouteBricksRouter
from repro.core.control import ClusterManager
from repro.core.partition import merge_fragments
from repro.core.topology import balanced_partitions
from repro.errors import ConfigurationError, TopologyError
from repro.faults import FaultSchedule
from repro.obs.metrics import MetricsRegistry
from repro.parallel import BACKENDS, simulate_parallel
from repro.simnet.partition import TransitRecord
from repro.simnet.rng import RngStreams, node_seeds
from repro.workloads import WorkloadSpec
from repro.workloads.matrices import uniform_matrix

NODES = 4
SEED = 11
UNTIL = 6e-4


def _router(**kwargs):
    kwargs.setdefault("num_nodes", NODES)
    kwargs.setdefault("seed", SEED)
    return RouteBricksRouter(**kwargs)


def _workload(router, load=0.3, size=64):
    return WorkloadSpec.fixed(size).with_matrix(
        uniform_matrix(router.num_nodes, router.port_rate_bps * load))


def _registry():
    # sample_every=1 exercises trace resume across partition boundaries
    # on every packet position the retention cap admits.
    return MetricsRegistry(enabled=True, trace_sample_every=16)


def _normalize(snapshot):
    """Strip the non-deterministic parts of a snapshot.

    ``engine_wall_seconds`` is wall time; ``run_workers``/``run_epochs``
    and the ``parallel_*`` runtime telemetry (wall-clock barrier/busy
    accounting that only a partitioned run charges) intentionally
    differ; trace packet ids are offset by the global packet-id
    counter's position when the run realized its arrivals, so they are
    rebased to the run's smallest sampled id.
    """
    snap = json.loads(json.dumps(snapshot))
    snap.get("counters", {}).pop("engine_wall_seconds", None)
    snap.get("gauges", {}).pop("run_workers", None)
    snap.get("gauges", {}).pop("run_epochs", None)
    for section in ("counters", "gauges", "histograms", "timelines"):
        metrics = snap.get(section, {})
        for name in [n for n in metrics if n.startswith("parallel_")]:
            metrics.pop(name)
    paths = snap.get("traces", {}).get("paths")
    if paths:
        base = min(p["packet_id"] for p in paths)
        for p in paths:
            p["packet_id"] -= base
    return snap


def _report_scalars(report, with_events=True):
    scalars = {
        "offered": report.offered_packets,
        "delivered": report.delivered_packets,
        "bytes": report.delivered_bytes,
        "dropped": report.dropped_packets,
        "direct": report.direct_packets,
        "indirect": report.indirect_packets,
        "reordered_fraction": report.reordered_fraction,
        "duration": report.duration_sec,
        "fault_events": report.fault_events,
        "fault_flushed": report.fault_flushed_packets,
        "node_stats": sorted((tuple(sorted(stats.items()))
                              for stats in report.node_stats)),
        "latency_mean": report.latency_usec.mean(),
        "latency_p50": report.latency_usec.percentile(50),
        "latency_p99": report.latency_usec.percentile(99),
    }
    if with_events:
        scalars["events_run"] = report.events_run
    return scalars


def _legacy(load=0.3, **simulate_kwargs):
    router = _router()
    registry = _registry()
    report = router.simulate(_workload(router, load), until=UNTIL,
                             metrics=registry, **simulate_kwargs)
    return report, _normalize(registry.snapshot())


def _parallel(workers, backend="inline", load=0.3, **kwargs):
    router = _router()
    registry = _registry()
    report = simulate_parallel(router, _workload(router, load), until=UNTIL,
                               workers=workers, backend=backend,
                               metrics=registry, **kwargs)
    return report, _normalize(registry.snapshot())


class TestGoldenEquivalence:
    """Satellite 1: RB4 at workers 1/2/4 == the single-heap engine."""

    def test_workers_sweep_bit_identical(self):
        legacy_report, legacy_snap = _legacy()
        for workers in (1, 2, 4):
            report, snap = _parallel(workers)
            assert _report_scalars(report) == _report_scalars(legacy_report), \
                "workers=%d report diverged" % workers
            assert snap == legacy_snap, "workers=%d snapshot diverged" % workers
            assert report.workers == workers
            assert report.delivered_packets > 0
            assert report.indirect_packets == 0  # Direct VLB at low load

    def test_process_backend_matches_inline(self):
        inline_report, inline_snap = _parallel(2, backend="inline")
        process_report, process_snap = _parallel(2, backend="process")
        assert (_report_scalars(process_report)
                == _report_scalars(inline_report))
        assert process_snap == inline_snap
        assert process_report.epochs == inline_report.epochs

    def test_run_to_run_determinism(self):
        first_report, first_snap = _parallel(2)
        second_report, second_snap = _parallel(2)
        assert _report_scalars(first_report) == _report_scalars(second_report)
        assert first_snap == second_snap

    def test_workers_one_delegates_to_single_heap(self):
        legacy_report, legacy_snap = _legacy()
        report, snap = _parallel(1)
        assert _report_scalars(report) == _report_scalars(legacy_report)
        assert snap == legacy_snap
        assert report.workers == 1
        assert report.epochs == 0  # no epoch loop ran

    def test_epochs_and_busy_seconds_recorded(self):
        report, _ = _parallel(2)
        assert report.epochs > 0
        assert len(report.partition_busy_seconds) == 2
        assert all(busy >= 0.0 for busy in report.partition_busy_seconds)


class TestPartitionedFaults:
    """Fault runs agree on every report scalar (event *counts* may differ:
    partitions keep per-partition fault bookkeeping events)."""

    def test_node_crash_scalar_parity(self):
        schedule = FaultSchedule().crash_node(at=0.3e-3, node=3)
        legacy_report, _ = _legacy(faults=schedule)
        report, _ = _parallel(2, faults=schedule)
        assert (_report_scalars(report, with_events=False)
                == _report_scalars(legacy_report, with_events=False))
        assert report.fault_events == 1
        assert report.dropped_packets > 0  # node 3's dark port drops

    def test_node_crash_and_recovery_parity(self):
        schedule = (FaultSchedule()
                    .crash_node(at=0.2e-3, node=1)
                    .recover_node(at=0.4e-3, node=1))
        legacy_report, _ = _legacy(faults=schedule)
        for workers in (2, 4):
            report, _ = _parallel(workers, faults=schedule)
            assert (_report_scalars(report, with_events=False)
                    == _report_scalars(legacy_report, with_events=False)), \
                "workers=%d fault run diverged" % workers

    def test_link_fault_parity(self):
        # (0 -> 2) crosses the partition boundary at workers=2: the link
        # is armed on the src owner, and remote aliveness bookkeeping is
        # exercised on both sides.
        schedule = (FaultSchedule()
                    .fail_link(at=0.2e-3, src=0, dst=2)
                    .restore_link(at=0.4e-3, src=0, dst=2))
        legacy_report, _ = _legacy(faults=schedule)
        report, _ = _parallel(2, faults=schedule)
        assert (_report_scalars(report, with_events=False)
                == _report_scalars(legacy_report, with_events=False))
        assert report.fault_events == 2

    def test_nic_stall_parity(self):
        schedule = FaultSchedule().stall_nic(at=0.2e-3, node=2,
                                             duration_sec=0.1e-3)
        legacy_report, _ = _legacy(faults=schedule)
        report, _ = _parallel(2, faults=schedule)
        assert (_report_scalars(report, with_events=False)
                == _report_scalars(legacy_report, with_events=False))

    def test_fault_dict_form_accepted(self):
        faults = [{"time": 0.2e-3, "kind": "node_down", "node": 3}]
        legacy_report, _ = _legacy(faults=faults)
        report, _ = _parallel(2, faults=faults)
        assert (_report_scalars(report, with_events=False)
                == _report_scalars(legacy_report, with_events=False))

    def test_failed_links_parity(self):
        legacy_report, legacy_snap = _legacy(failed_links=[(0, 2)])
        report, snap = _parallel(2, failed_links=[(0, 2)])
        assert _report_scalars(report) == _report_scalars(legacy_report)
        assert snap == legacy_snap
        assert report.indirect_packets > 0  # re-balanced around the link

    def test_rate_limited_egress_parity(self):
        legacy_report, legacy_snap = _legacy(rate_limited_egress=True)
        report, snap = _parallel(2, rate_limited_egress=True)
        assert _report_scalars(report) == _report_scalars(legacy_report)
        assert snap == legacy_snap


class TestValidation:
    def test_manager_requires_single_worker(self):
        router = _router()
        manager = ClusterManager()
        for port in range(NODES):
            manager.add_node(external_port=port)
            manager.announce("10.%d.0.0/16" % port, port)
        manager.push_fibs()
        with pytest.raises(ConfigurationError, match="workers=1"):
            simulate_parallel(router, _workload(router), until=UNTIL,
                              workers=2, backend="inline", manager=manager)

    def test_resequence_requires_single_worker(self):
        router = _router(resequence=True)
        with pytest.raises(ConfigurationError, match="workers=1"):
            simulate_parallel(router, _workload(router), until=UNTIL,
                              workers=2, backend="inline")

    def test_rejects_unknown_backend(self):
        router = _router()
        with pytest.raises(ConfigurationError, match="backend"):
            simulate_parallel(router, _workload(router), until=UNTIL,
                              workers=2, backend="threads")

    def test_rejects_bad_worker_count(self):
        router = _router()
        with pytest.raises(ConfigurationError, match="workers"):
            simulate_parallel(router, _workload(router), until=UNTIL,
                              workers=0)

    def test_requires_horizon(self):
        router = _router()
        with pytest.raises(ConfigurationError, match="until"):
            simulate_parallel(router, _workload(router), until=0, workers=2)

    def test_more_workers_than_nodes_rejected(self):
        router = _router()
        with pytest.raises(TopologyError):
            simulate_parallel(router, _workload(router), until=UNTIL,
                              workers=NODES + 1, backend="inline")

    def test_backends_constant(self):
        assert BACKENDS == ("inline", "process")


class TestTransitRecords:
    def test_pickle_round_trip(self):
        record = TransitRecord(deliver_time=1.5e-6, send_time=1.0e-6,
                               src_node=0, seq=7, dst_node=3,
                               wire=("opaque", 42))
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record
        assert clone.wire == ("opaque", 42)

    def test_sort_key_matches_single_heap_tie_order(self):
        # Equal deliver times fall back to send time, then (src, seq) --
        # the schedule-order tiebreak of the global engine.
        records = [
            TransitRecord(2e-6, 1.5e-6, 1, 0, 2, ()),
            TransitRecord(2e-6, 1.0e-6, 1, 1, 2, ()),
            TransitRecord(1e-6, 0.5e-6, 0, 5, 2, ()),
            TransitRecord(2e-6, 1.0e-6, 0, 9, 2, ()),
        ]
        ordered = sorted(records)
        assert [(r.src_node, r.seq) for r in ordered] == [
            (0, 5), (0, 9), (1, 1), (1, 0)]


class TestBalancedPartitions:
    def test_even_split(self):
        assert balanced_partitions(4, 2) == [0, 0, 1, 1]
        assert balanced_partitions(8, 4) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_remainder_goes_to_low_partitions(self):
        assert balanced_partitions(5, 2) == [0, 0, 0, 1, 1]

    def test_single_partition(self):
        assert balanced_partitions(3, 1) == [0, 0, 0]

    def test_rejects_more_partitions_than_nodes(self):
        with pytest.raises(TopologyError):
            balanced_partitions(2, 3)


class TestSeedDerivation:
    """Satellite 3: per-node seeds are sharding-invariant."""

    def test_node_seeds_match_legacy_chain(self):
        import random
        root = random.Random(SEED)
        expected = [root.getrandbits(32) for _ in range(NODES)]
        assert node_seeds(SEED, NODES) == expected

    def test_prefix_stability(self):
        # A partition that re-derives the full chain and slices its local
        # range sees the same seeds the single sim assigned.
        assert node_seeds(SEED, 8)[:4] == node_seeds(SEED, 4)

    def test_spawn_is_deterministic_and_independent(self):
        a = RngStreams(3).spawn("partition/0")
        b = RngStreams(3).spawn("partition/0")
        c = RngStreams(3).spawn("partition/1")
        assert a.stream("x").random() == b.stream("x").random()
        assert (RngStreams(3).spawn("partition/0").stream("x").random()
                != c.stream("x").random())
        # Spawning is not the same as streaming: the child namespace is
        # separate from the parent's own streams.
        assert (RngStreams(3).spawn("p").seed
                != RngStreams(3).stream("p").randint(0, 2 ** 63))


class TestMergeFragments:
    def test_empty_merge_is_an_empty_report(self):
        report = merge_fragments([], offered_packets=0, duration_sec=1.0,
                                 workers=0, epochs=0)
        assert report.delivered_packets == 0
        assert report.partition_busy_seconds == []
