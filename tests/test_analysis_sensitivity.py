"""Tests for the calibration-sensitivity analysis."""

import pytest

from repro import calibration as cal
from repro.analysis.sensitivity import (
    all_conclusions_hold,
    conclusions_at,
    perturbed_app,
    robustness_sweep,
)
from repro.errors import ConfigurationError


class TestPerturbation:
    def test_scaling_applies(self):
        doubled = perturbed_app(cal.MINIMAL_FORWARDING, cpu_factor=2.0)
        assert doubled.cpu_cycles(64) == pytest.approx(
            2 * cal.MINIMAL_FORWARDING.cpu_cycles(64))
        assert doubled.mem_bytes(64) == pytest.approx(
            cal.MINIMAL_FORWARDING.mem_bytes(64))

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            perturbed_app(cal.MINIMAL_FORWARDING, cpu_factor=0)


class TestConclusions:
    def test_baseline_all_hold(self):
        conclusions = conclusions_at()
        assert all(conclusions.values())

    def test_conclusions_survive_20_percent_error(self):
        """The paper's qualitative story tolerates +-20 % calibration
        error on every cost axis independently."""
        rows = robustness_sweep(factors=[0.8, 1.0, 1.2])
        assert all_conclusions_hold(rows)

    def test_extreme_cpu_inflation_breaks_nic_conclusion(self):
        """Sanity that the harness can detect a broken conclusion: with
        3x CPU cost, Abilene forwarding becomes CPU-bound, not
        NIC-limited."""
        conclusions = conclusions_at(cpu_factor=3.5)
        assert not conclusions["nic_limited_abilene"]

    def test_extreme_memory_cut_breaks_next_gen_crossover(self):
        """Halving memory cost moves the next-gen routing bottleneck back
        to the CPU -- the crossover really does hinge on the memory
        calibration."""
        conclusions = conclusions_at(mem_factor=0.5)
        assert not conclusions["routing_memory_bound_next_gen"]

    def test_sweep_shape(self):
        rows = robustness_sweep(factors=[1.0])
        assert len(rows) == 3
        assert {row["axis"] for row in rows} == {"cpu", "mem", "io"}
