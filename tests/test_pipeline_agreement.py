"""Model-vs-DES agreement for a *custom* (non-preset) Click pipeline.

The unified cost layer's whole point: compile an arbitrary pipeline's
element graph to a per-packet load vector, predict its maximum loss-free
rate analytically, then actually run the same pipeline in the timed
simulation and check the saturation rates agree.  The pipeline here is
deliberately not one of the PRESET_PIPELINES texts -- it adds a Counter
on the fast path -- so agreement cannot come from preset-specific
calibration.
"""

import pytest

from repro.click import TimedPipelineRun, build_pipeline
from repro.costs import compile_loads
from repro.hw.presets import NEHALEM
from repro.hw.server import Server
from repro.perfmodel import rate_from_loads

CUSTOM_PIPELINE = """
    // Routing with an extra Counter on the fast path (not a preset).
    src :: PollDevice(0);
    rt :: LookupIPRoute(1);
    src -> Counter -> CheckIPHeader -> DecIPTTL -> rt;
    rt [0] -> EtherEncap -> ToDevice(0);
    rt [1] -> Discard;
"""

PACKET_BYTES = 64


def analytic_rate_bps():
    server = Server(NEHALEM, num_ports=1, queues_per_port=1)
    graph = build_pipeline(CUSTOM_PIPELINE, server)
    loads = compile_loads(graph, packet_bytes=PACKET_BYTES)
    return rate_from_loads(loads, PACKET_BYTES).rate_bps


def test_custom_pipeline_compiles_like_routing_plus_counter():
    """Sanity: the custom graph costs at least the routing preset."""
    server = Server(NEHALEM, num_ports=1, queues_per_port=1)
    custom = compile_loads(build_pipeline(CUSTOM_PIPELINE, server),
                           packet_bytes=PACKET_BYTES)
    server2 = Server(NEHALEM, num_ports=1, queues_per_port=1)
    preset = compile_loads(build_pipeline("routing", server2),
                           packet_bytes=PACKET_BYTES)
    assert custom.cpu_cycles >= preset.cpu_cycles
    assert custom.mem_bytes == pytest.approx(preset.mem_bytes)


@pytest.mark.slow
def test_model_vs_des_agreement_on_custom_pipeline():
    """DES saturation rate within 10% of the analytic prediction."""
    predicted_bps = analytic_rate_bps()
    server = Server(NEHALEM, num_ports=1,
                    queues_per_port=NEHALEM.total_cores)
    run = TimedPipelineRun(server, CUSTOM_PIPELINE,
                           packet_bytes=PACKET_BYTES)
    measured_bps = run.find_loss_free_rate(
        low_bps=0.25 * predicted_bps, high_bps=2.0 * predicted_bps,
        tolerance_bps=0.02 * predicted_bps, duration_sec=1e-3)
    assert measured_bps == pytest.approx(predicted_bps, rel=0.10)


@pytest.mark.slow
def test_des_saturates_not_below_offered_load():
    """Below the predicted rate the pipeline run is sustainable."""
    predicted_bps = analytic_rate_bps()
    server = Server(NEHALEM, num_ports=1,
                    queues_per_port=NEHALEM.total_cores)
    run = TimedPipelineRun(server, CUSTOM_PIPELINE,
                           packet_bytes=PACKET_BYTES)
    report = run.run(0.7 * predicted_bps, duration_sec=1e-3)
    assert report.sustainable(2 * run.kp * len(run._rx_queues()))
    assert report.forwarded_packets > 0
