"""The paper's story, end to end, as one integration test file.

Each test is a stage of the RouteBricks argument; together they read as
the evaluation narrative.  These are intentionally redundant with the
focused unit tests -- their job is to assert the *connected* story.
"""

import pytest

from repro import calibration as cal
from repro.analysis.summary import headline_rows, worst_ratio_deviation
from repro.core import RouteBricksRouter
from repro.core.provision import max_mesh_ports, servers_required
from repro.core.topology import switched_cluster_equivalent_servers
from repro.perfmodel import max_loss_free_rate
from repro.perfmodel.scenarios import SCENARIOS, fig7_configurations
from repro.workloads import WorkloadSpec


class TestSection3_AcrossServers:
    def test_vlb_beats_switched_cluster_on_cost(self):
        for ports in (32, 256, 1024):
            assert servers_required(ports, "current") \
                < switched_cluster_equivalent_servers(ports)

    def test_mesh_then_fly(self):
        assert max_mesh_ports("current") == 32
        assert servers_required(64, "current") > 64  # intermediates appear


class TestSection4_WithinServers:
    def test_two_scheduling_rules_from_fig6(self):
        # Rule 2 (one core per packet): parallel beats any pipeline.
        assert SCENARIOS["parallel"].rate_gbps > SCENARIOS["pipeline"].rate_gbps
        # Rule 1 (one core per queue): shared queues halve throughput.
        assert SCENARIOS["overlap"].rate_gbps \
            < SCENARIOS["overlap_multi_queue"].rate_gbps / 2

    def test_batching_buys_6_7x(self):
        rows = {r["label"]: r["rate_mpps"] for r in fig7_configurations()}
        final = rows["nehalem/multi-queue/batching"]
        assert final / rows["nehalem/single-queue/no-batching"] > 5.5


class TestSection5_ServerEvaluation:
    def test_cpu_is_the_bottleneck_and_that_is_good_news(self):
        # All apps CPU-bound at 64B: the paper's alignment argument --
        # router workloads now scale with Moore's law like everything else.
        for app in cal.APPLICATIONS.values():
            assert max_loss_free_rate(
                WorkloadSpec.fixed(64, app=app)).bottleneck == "cpu"
        # And indeed the 4x-CPU next-gen projection delivers ~4x for the
        # purely CPU-bound workloads.
        from repro.perfmodel import project_rates
        projections = project_rates()
        assert projections["forwarding"].rate_gbps \
            / max_loss_free_rate(WorkloadSpec.fixed(
                64, app=cal.MINIMAL_FORWARDING)).rate_gbps \
            == pytest.approx(4.0, rel=0.02)


class TestSection6_RB4:
    def test_rb4_headlines(self):
        rb4 = RouteBricksRouter()
        assert rb4.max_throughput(
            WorkloadSpec.fixed(64)).aggregate_gbps == pytest.approx(
            12.0, rel=0.02)
        assert rb4.max_throughput(
            WorkloadSpec.fixed(740)).aggregate_gbps == pytest.approx(
            35.0, rel=0.02)

    def test_commendable_vs_worst_case_gap(self):
        # The paper's bottom line: great on realistic traffic, short of
        # line rate on worst-case 64B -- quantified.
        rb4 = RouteBricksRouter()
        abilene = rb4.max_throughput(WorkloadSpec.fixed(740))
        worst = rb4.max_throughput(WorkloadSpec.fixed(64))
        assert abilene.per_port_bps / 10e9 > 0.85   # close to line rate
        assert worst.per_port_bps / 10e9 < 0.5      # the remaining gap


class TestHeadlineSummary:
    def test_every_headline_within_11_percent(self):
        rows = headline_rows()
        assert worst_ratio_deviation(rows) < 0.11

    def test_most_headlines_within_2_percent(self):
        rows = headline_rows()
        tight = [row for row in rows
                 if "ratio" in row and abs(row["ratio"] - 1) < 0.02]
        assert len(tight) >= len(rows) - 2
