"""Tests for the added standard elements: Paint, Meter, RandomSample,
and the ESP decapsulation element."""

import pytest

from repro.click import CounterElement, Discard
from repro.click.elements.ipsec_decap import IPsecESPDecap
from repro.click.elements.standard import CheckPaint, Meter, Paint, RandomSample
from repro.crypto import EspContext, esp_encapsulate
from repro.errors import ConfigurationError
from repro.net import IPv4Address, Packet


def _counted(element, n_outputs=None):
    sinks = []
    count = n_outputs or element.n_outputs
    for i in range(count):
        sink = CounterElement(name="%s-s%d" % (element.name, i))
        sink.connect_to(Discard(name="%s-dd%d" % (element.name, i)))
        element.connect_to(sink, output=i)
        sinks.append(sink)
    return sinks


class TestPaint:
    def test_paint_and_check(self):
        paint = Paint(color=7)
        check = CheckPaint(color=7)
        paint.connect_to(check)
        match, other = _counted(check)
        paint.receive(Packet.udp("1.1.1.1", "2.2.2.2"))
        assert match.count == 1
        check.receive(Packet.udp("1.1.1.1", "2.2.2.2"))  # unpainted
        assert other.count == 1


class TestMeter:
    def test_conforming_and_excess(self):
        meter = Meter(rate_pps=1000, burst=2)
        ok, excess = _counted(meter)
        for _ in range(5):
            meter.receive(Packet.udp("1.1.1.1", "2.2.2.2"))
        assert ok.count == 2     # burst tokens
        assert excess.count == 3

    def test_refill(self):
        meter = Meter(rate_pps=1000, burst=1)
        ok, excess = _counted(meter)
        meter.receive(Packet.udp("1.1.1.1", "2.2.2.2"))
        meter.now = 0.01
        meter.receive(Packet.udp("1.1.1.1", "2.2.2.2"))
        assert ok.count == 2
        assert excess.count == 0

    def test_bad_params(self):
        with pytest.raises(ConfigurationError):
            Meter(rate_pps=0)


class TestRandomSample:
    def test_sampling_fraction(self):
        sample = RandomSample(p=0.25, seed=3)
        (sink,) = _counted(sample)
        for _ in range(2000):
            sample.receive(Packet.udp("1.1.1.1", "2.2.2.2"))
        assert 400 < sink.count < 600

    def test_p_zero_and_one(self):
        none = RandomSample(p=0.0)
        _counted(none)
        none.receive(Packet.udp("1.1.1.1", "2.2.2.2"))
        assert none.sampled == 0
        everything = RandomSample(p=1.0, name="all")
        _counted(everything)
        everything.receive(Packet.udp("1.1.1.1", "2.2.2.2"))
        assert everything.sampled == 1

    def test_bad_p(self):
        with pytest.raises(ConfigurationError):
            RandomSample(p=1.5)


class TestSetTTL:
    def test_rewrites_ttl_and_checksum(self):
        from repro.click.elements.standard import SetTTL
        from repro.net.checksum import verify_checksum
        element = SetTTL(ttl=5)
        (sink,) = _counted(element)
        packet = Packet.udp("1.1.1.1", "2.2.2.2", ttl=64)
        element.receive(packet)
        assert packet.ip.ttl == 5
        assert verify_checksum(packet.ip.pack(recompute_checksum=False))
        assert sink.count == 1

    def test_non_ip_dropped(self):
        from repro.click.elements.standard import SetTTL
        element = SetTTL(ttl=5)
        _counted(element)
        element.receive(Packet(length=64))
        assert element.packets_dropped == 1

    def test_bad_ttl(self):
        from repro.click.elements.standard import SetTTL
        with pytest.raises(ConfigurationError):
            SetTTL(ttl=0)


class TestSourceFilter:
    def test_filters_matching_sources(self):
        from repro.click.elements.standard import SourceFilter
        element = SourceFilter("10.0.0.0/8")
        passed, filtered = _counted(element)
        element.receive(Packet.udp("10.1.2.3", "8.8.8.8"))
        element.receive(Packet.udp("192.0.2.1", "8.8.8.8"))
        assert filtered.count == 1
        assert passed.count == 1
        assert element.filtered == 1

    def test_drop_when_filter_port_dangling(self):
        from repro.click.elements.standard import SourceFilter
        element = SourceFilter("10.0.0.0/8")
        sink = CounterElement()
        sink.connect_to(Discard())
        element.connect_to(sink, output=0)
        element.receive(Packet.udp("10.1.2.3", "8.8.8.8"))
        assert element.packets_dropped == 1

    def test_config_language_integration(self):
        from repro.click.config import parse_config
        graph = parse_config("""
            f :: SourceFilter("10.0.0.0/8");
            good :: Counter;
            f [0] -> good -> Discard;
            f [1] -> Discard;
        """)
        graph["f"].receive(Packet.udp("172.16.0.1", "8.8.8.8"))
        graph["f"].receive(Packet.udp("10.9.9.9", "8.8.8.8"))
        assert graph["good"].count == 1

    def test_setttl_config_language(self):
        from repro.click.config import parse_config
        graph = parse_config("t :: SetTTL(9); t -> Counter -> Discard;")
        packet = Packet.udp("1.1.1.1", "2.2.2.2", ttl=64)
        graph["t"].receive(packet)
        assert packet.ip.ttl == 9


class TestEspDecapElement:
    def _contexts(self):
        key = b"\x09" * 16
        make = lambda: EspContext(spi=5, key=key,
                                  tunnel_src=IPv4Address("172.16.0.1"),
                                  tunnel_dst=IPv4Address("172.16.0.2"))
        return make(), make()

    def test_decrypts_valid_packets(self):
        enc_ctx, dec_ctx = self._contexts()
        decap = IPsecESPDecap(dec_ctx)
        good, bad = _counted(decap)
        inner = Packet.udp("10.0.0.1", "10.0.0.2", length=120, src_port=33)
        decap.receive(esp_encapsulate(enc_ctx, inner))
        assert good.count == 1
        assert decap.decrypted == 1

    def test_non_esp_to_error_port(self):
        _, dec_ctx = self._contexts()
        decap = IPsecESPDecap(dec_ctx)
        good, bad = _counted(decap)
        decap.receive(Packet.udp("1.1.1.1", "2.2.2.2"))
        assert bad.count == 1
        assert decap.failed == 1

    def test_wrong_key_fails(self):
        enc_ctx, _ = self._contexts()
        other = EspContext(spi=5, key=b"\xFF" * 16,
                           tunnel_src=IPv4Address("172.16.0.1"),
                           tunnel_dst=IPv4Address("172.16.0.2"))
        decap = IPsecESPDecap(other)
        good, bad = _counted(decap)
        decap.receive(esp_encapsulate(enc_ctx,
                                      Packet.udp("1.1.1.1", "2.2.2.2")))
        assert bad.count == 1

    def test_replay_window(self):
        enc_ctx, dec_ctx = self._contexts()
        decap = IPsecESPDecap(dec_ctx, replay_window=4)
        good, bad = _counted(decap)
        inner = Packet.udp("10.0.0.1", "10.0.0.2")
        packets = [esp_encapsulate(enc_ctx, inner) for _ in range(8)]
        # Deliver the newest first, then an ancient one.
        decap.receive(packets[7])  # seq 8
        decap.receive(packets[0])  # seq 1: outside window of 4
        assert decap.replayed == 1
        assert good.count == 1

    def test_error_port_optional(self):
        _, dec_ctx = self._contexts()
        decap = IPsecESPDecap(dec_ctx)
        sink = CounterElement()
        sink.connect_to(Discard())
        decap.connect_to(sink, output=0)
        decap.receive(Packet.udp("1.1.1.1", "2.2.2.2"))  # fails -> dropped
        assert decap.packets_dropped == 1
