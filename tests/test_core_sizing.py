"""Tests for per-server port sizing (the Sec. 9 conclusion numbers)."""

import pytest

from repro.core.sizing import (
    conclusion_claims,
    ports_per_server,
    processing_capacity_bps,
)
from repro.errors import ConfigurationError
from repro.hw.presets import NEHALEM_NEXT_GEN


class TestCapacity:
    def test_realistic_capacity_is_nic_limited(self):
        assert processing_capacity_bps("realistic") == pytest.approx(
            24.6e9, rel=0.01)

    def test_worst_case_capacity(self):
        assert processing_capacity_bps("worst-case") == pytest.approx(
            6.35e9, rel=0.01)

    def test_bad_workload(self):
        with pytest.raises(ConfigurationError):
            processing_capacity_bps("average")


class TestPortsPerServer:
    def test_about_8_or_9_one_gig_ports(self):
        """Sec. 9: 'multiple (about 8-9) 1 Gbps ports per server'."""
        sizing = ports_per_server(1e9, workload="realistic",
                                  worst_case_matrix=True)
        assert sizing.ports in (8, 9)

    def test_uniform_traffic_doubles_the_budget(self):
        worst = ports_per_server(1e9, worst_case_matrix=True)
        uniform = ports_per_server(1e9, worst_case_matrix=False)
        assert uniform.ports == pytest.approx(worst.ports * 1.5, abs=1)

    def test_utilization_below_one(self):
        sizing = ports_per_server(1e9)
        assert sizing.utilized_fraction <= 1.0

    def test_next_gen_hosts_more_ports(self):
        now = ports_per_server(1e9, workload="worst-case")
        future = ports_per_server(1e9, workload="worst-case",
                                  spec=NEHALEM_NEXT_GEN)
        assert future.ports > 2 * now.ports

    def test_bad_rate(self):
        with pytest.raises(ConfigurationError):
            ports_per_server(0)


class TestConclusionClaims:
    def test_sec9_narrative(self):
        claims = conclusion_claims()
        # "about 8-9 1 Gbps ports per server"
        assert claims["ports_1g"] in (8, 9)
        # "we come very close to achieving a line rate of 10 Gbps"
        assert claims["fraction_of_10g_realistic"] > 0.95
        # "...but falls short for worst-case workloads"
        assert claims["fraction_of_10g_worst_case"] < 0.5
