"""Tests for the FaultSchedule DSL (repro.faults.schedule)."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    LINK_DOWN,
    LINK_UP,
    NIC_STALL,
    NODE_DOWN,
    NODE_UP,
)


class TestFaultEvent:
    def test_node_event(self):
        event = FaultEvent(time=1e-3, kind=NODE_DOWN, target=2)
        assert event.target == 2

    def test_link_event(self):
        event = FaultEvent(time=0.0, kind=LINK_DOWN, target=(0, 1))
        assert event.target == (0, 1)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=-1.0, kind=NODE_DOWN, target=0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind="meteor_strike", target=0)

    def test_node_kind_needs_int_target(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=NODE_UP, target=(0, 1))

    def test_link_kind_needs_pair_target(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=LINK_UP, target=3)

    def test_link_cannot_loop(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=LINK_DOWN, target=(2, 2))

    def test_nic_stall_needs_duration(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=NIC_STALL, target=1)
        event = FaultEvent(time=0.0, kind=NIC_STALL, target=1,
                           duration_sec=1e-4)
        assert event.duration_sec == 1e-4

    def test_duration_only_for_stall(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=NODE_DOWN, target=1, duration_sec=1.0)


class TestBuilder:
    def test_builder_chains(self):
        schedule = (FaultSchedule()
                    .crash_node(at=1e-3, node=2)
                    .recover_node(at=3e-3, node=2)
                    .fail_link(at=2e-3, src=0, dst=1))
        assert len(schedule) == 3

    def test_events_sorted_by_time(self):
        schedule = (FaultSchedule()
                    .recover_node(at=3e-3, node=2)
                    .crash_node(at=1e-3, node=2))
        times = [event.time for event in schedule.events()]
        assert times == sorted(times)

    def test_flap_link_expands_to_cycles(self):
        schedule = FaultSchedule().flap_link(0, 1, start=0.0,
                                             period_sec=1e-3, count=3)
        kinds = [event.kind for event in schedule.events()]
        assert kinds == [LINK_DOWN, LINK_UP] * 3

    def test_flap_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().flap_link(0, 1, start=0.0, period_sec=0,
                                      count=1)
        with pytest.raises(ConfigurationError):
            FaultSchedule().flap_link(0, 1, start=0.0, period_sec=1e-3,
                                      count=0)

    def test_validate_against_cluster_size(self):
        schedule = FaultSchedule().crash_node(at=0.0, node=7)
        schedule.validate(8)
        with pytest.raises(ConfigurationError):
            schedule.validate(4)

    def test_max_node_id(self):
        schedule = (FaultSchedule()
                    .crash_node(at=0.0, node=1)
                    .fail_link(at=0.0, src=2, dst=5))
        assert schedule.max_node_id() == 5
        assert FaultSchedule().max_node_id() == -1


class TestSerialization:
    def test_json_round_trip(self):
        schedule = (FaultSchedule()
                    .crash_node(at=1e-3, node=2)
                    .fail_link(at=2e-3, src=0, dst=1)
                    .stall_nic(at=3e-3, node=0, duration_sec=5e-4))
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored.events() == schedule.events()

    def test_from_dict_accepts_bare_list(self):
        schedule = FaultSchedule.from_dict(
            [{"time": 1e-3, "kind": "node_down", "node": 1}])
        assert len(schedule) == 1
        assert schedule.events()[0].target == 1

    def test_from_dict_link_event(self):
        schedule = FaultSchedule.from_dict(
            {"events": [{"time": 0.5, "kind": "link_down",
                         "src": 1, "dst": 2}]})
        assert schedule.events()[0].target == (1, 2)

    def test_from_dict_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_dict([{"kind": "node_down", "node": 1}])
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_dict([{"time": 0.0, "kind": "link_down",
                                      "src": 1}])
