"""Tests for the metrics registry, timelines, tracing, and DES hooks."""

import pytest

from repro.click.simrun import TimedPipelineRun
from repro.core import RouteBricksRouter
from repro.hw import nehalem_server
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PathTrace,
    TraceSampler,
    active_registry,
    set_active_registry,
    use_registry,
)
from repro.obs.trace import TRACE_ANNOTATION
from repro.net.packet import Packet
from repro.workloads import FlowGenerator


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("packets")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_counter_rejects_negative(self):
        c = Counter("packets")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_labels_are_independent_series(self):
        c = Counter("drops")
        c.inc(3, node=0, reason="overflow")
        c.inc(4, node=1, reason="overflow")
        c.inc(1, reason="overflow", node=0)  # order must not matter
        assert c.value(node=0, reason="overflow") == 4
        assert c.value(node=1, reason="overflow") == 4
        assert c.total() == 8

    def test_gauge_set_and_add(self):
        g = Gauge("occupancy")
        g.set(10, queue="rx0")
        g.add(-3, queue="rx0")
        assert g.value(queue="rx0") == 7

    def test_gauge_bind_matches_set(self):
        # Same semantics as Counter/Histogram/Timeline .bind(): a
        # pre-resolved last-writer-wins setter for one label set.
        g = Gauge("busy")
        setter = g.bind(workers=2, partition=0)
        assert len(g) == 0  # binding alone creates no series
        setter(1.5)
        setter(2.5)
        assert g.value(workers=2, partition=0) == 2.5
        g.set(9.0, partition=0, workers=2)  # same series, either path
        assert g.value(workers=2, partition=0) == 9.0
        setter(3.0)
        assert g.series() == {"{partition=0,workers=2}": 3.0}


class TestHistogram:
    def test_quantiles_are_exact_on_small_sets(self):
        h = Histogram("latency")
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            h.observe(v)
        assert h.quantile(0.5) == 5
        assert h.quantile(0.99) == 10
        summary = h.summary()
        assert summary["count"] == 10
        assert summary["mean"] == pytest.approx(5.5)

    def test_labeled_series(self):
        h = Histogram("hops")
        h.observe(1, role="output")
        h.observe(9, role="intermediate")
        assert h.count(role="output") == 1
        assert h.count(role="intermediate") == 1
        assert set(h.series()) == {"{role=intermediate}", "{role=output}"}


class TestTimeline:
    def test_binning(self):
        reg = MetricsRegistry(timeline_bin_sec=1.0)
        t = reg.timeline("events")
        t.record(0.1)
        t.record(0.9)
        t.record(1.5, value=4.0)
        rows = t.bins()
        assert rows == [(0.0, 2.0, 2, 1.0), (1.0, 4.0, 1, 4.0)]

    def test_coarsening_bounds_exported_bins(self):
        reg = MetricsRegistry(timeline_bin_sec=0.001)
        t = reg.timeline("events")
        for i in range(1000):
            t.record(i * 0.001)
        series = t.series(max_bins=100)
        (_, data), = series.items()
        assert len(data["bins"]) <= 100
        total = sum(b[2] for b in data["bins"])
        assert total == 1000  # coarsening must not lose observations

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.timeline("x")


class TestTraceSampler:
    def test_one_in_n_deterministic(self):
        sampler = TraceSampler(sample_every=4)
        packets = [Packet(64) for _ in range(12)]
        traced = [p for p in packets
                  if sampler.maybe_start(p, time=0.0) is not None]
        # First packet, then every 4th: 3 of 12.
        assert len(traced) == 3
        assert sampler.seen == 12
        assert sampler.sampled == 3

    def test_trace_records_hops_in_order(self):
        trace = PathTrace(packet_id=7, started=0.0)
        trace.hop("node0.input", 0.0)
        trace.hop("node2.intermediate", 1e-5)
        trace.hop("node1.egress", 2e-5)
        assert trace.sites() == ["node0.input", "node2.intermediate",
                                 "node1.egress"]
        assert trace.duration() == pytest.approx(2e-5)

    def test_max_traces_caps_retention_not_counting(self):
        sampler = TraceSampler(sample_every=1, max_traces=5)
        for i in range(20):
            sampler.maybe_start(Packet(64), time=float(i))
        assert len(sampler.traces) == 5
        assert sampler.sampled == 20


class TestActiveRegistry:
    def test_disabled_by_default(self):
        assert active_registry().enabled is False

    def test_use_registry_restores(self):
        before = active_registry()
        reg = MetricsRegistry()
        with use_registry(reg):
            assert active_registry() is reg
        assert active_registry() is before

    def test_set_returns_previous(self):
        before = active_registry()
        reg = MetricsRegistry()
        old = set_active_registry(reg)
        try:
            assert old is before
        finally:
            set_active_registry(before)


def _cluster_events(count=200, seed=7):
    gen = FlowGenerator(num_flows=12, packets_per_flow=count // 12 + 1,
                        packet_bytes=740, seed=seed)
    events = []
    for index, (time, packet) in enumerate(gen.timed_packets()):
        if index >= count:
            break
        ingress = index % 4
        egress = (ingress + 1 + index % 3) % 4
        events.append((time, ingress, egress, packet))
    events.sort(key=lambda e: e[0])
    return events


class TestDesInstrumentation:
    def test_pipeline_run_charges_cores_and_buses(self):
        reg = MetricsRegistry()
        run = TimedPipelineRun(nehalem_server(), "forwarding",
                               packet_bytes=64, metrics=reg)
        run.run(offered_bps=2e9, duration_sec=2e-4)
        cycles = reg.get("core_cycles")
        assert cycles is not None and cycles.total() > 0
        assert any("kind=busy" in key for key in cycles.series())
        assert reg.get("bus_bytes").total() > 0
        assert reg.get("sim_events").totals()["count"] > 0
        assert reg.get("rxq_occupancy") is not None

    def test_disabled_registry_adds_no_metrics(self):
        run = TimedPipelineRun(nehalem_server(), "forwarding",
                               packet_bytes=64)
        run.run(offered_bps=2e9, duration_sec=2e-4)
        assert active_registry().names() == []

    def test_identical_forwarding_with_and_without_metrics(self):
        """Observation must not perturb the simulated system."""
        def forwarded(metrics):
            run = TimedPipelineRun(nehalem_server(), "forwarding",
                                   packet_bytes=64, metrics=metrics)
            return run.run(offered_bps=2e9,
                           duration_sec=2e-4).forwarded_packets
        assert forwarded(None) == forwarded(MetricsRegistry())

    def test_cluster_hop_latency_and_traces(self):
        reg = MetricsRegistry(trace_sample_every=8)
        router = RouteBricksRouter(seed=1)
        router.simulate(_cluster_events(), metrics=reg)
        hops = reg.get("vlb_hop_latency_usec")
        assert hops is not None
        assert reg.get("vlb_path_hops").count() > 0
        snap = reg.snapshot()
        assert snap["traces"]["sampled"] > 0
        # Sampled, delivered paths start at an input and end at egress.
        for path in snap["traces"]["paths"]:
            sites = [hop["site"] for hop in path["hops"]]
            assert sites[0].endswith(".input")
            assert sites[-1].endswith(".egress")

    def test_cluster_observer_records_link_timelines(self):
        reg = MetricsRegistry()
        router = RouteBricksRouter(seed=2)
        router.simulate(_cluster_events(), until=5e-3, metrics=reg)
        occupancy = reg.get("link_occupancy")
        assert occupancy is not None and len(occupancy) > 0
        assert reg.get("link_bytes").totals is not None

    def test_trace_annotation_travels_on_packet(self):
        sampler = TraceSampler(sample_every=1)
        p = Packet(64)
        trace = sampler.maybe_start(p, time=0.0)
        assert p.annotations[TRACE_ANNOTATION] is trace


class TestSnapshot:
    def test_snapshot_is_json_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc(1, a=1)
        reg.histogram("h").observe(2.0)
        reg.timeline("t").record(0.0)
        json.dumps(reg.snapshot())  # must not raise

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.tracer.maybe_start(Packet(64), time=0.0)
        reg.reset()
        assert reg.names() == []
        assert reg.tracer.seen == 0
