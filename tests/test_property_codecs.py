"""Hypothesis property tests on the wire codecs."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import IPv4Address, MACAddress, Packet
from repro.net.checksum import verify_checksum
from repro.net.headers import (
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
)
from repro.net.icmp import IcmpHeader
from repro.workloads.pcapio import read_pcap, write_pcap

addr32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
addr48 = st.integers(min_value=0, max_value=(1 << 48) - 1)
port16 = st.integers(min_value=0, max_value=(1 << 16) - 1)
byte8 = st.integers(min_value=0, max_value=255)


@settings(max_examples=60, deadline=None)
@given(dst=addr48, src=addr48, ethertype=port16)
def test_ethernet_round_trip(dst, src, ethertype):
    header = EthernetHeader(dst=MACAddress(dst), src=MACAddress(src),
                            ethertype=ethertype)
    assert EthernetHeader.unpack(header.pack()) == header


@settings(max_examples=60, deadline=None)
@given(src=addr32, dst=addr32, ttl=st.integers(min_value=1, max_value=255),
       proto=byte8, length=st.integers(min_value=20, max_value=65535),
       ident=port16, dscp=byte8)
def test_ipv4_round_trip_and_checksum(src, dst, ttl, proto, length, ident,
                                      dscp):
    header = IPv4Header(src=IPv4Address(src), dst=IPv4Address(dst), ttl=ttl,
                        proto=proto, total_length=length,
                        identification=ident, dscp=dscp)
    raw = header.pack()
    assert verify_checksum(raw)
    assert IPv4Header.unpack(raw) == header


@settings(max_examples=60, deadline=None)
@given(sp=port16, dp=port16, seq=addr32, ack=addr32,
       flags=st.integers(min_value=0, max_value=0x1FF), window=port16)
def test_tcp_round_trip(sp, dp, seq, ack, flags, window):
    header = TCPHeader(src_port=sp, dst_port=dp, seq=seq, ack=ack,
                       flags=flags, window=window)
    assert TCPHeader.unpack(header.pack()) == header


@settings(max_examples=60, deadline=None)
@given(sp=port16, dp=port16, length=port16)
def test_udp_round_trip(sp, dp, length):
    header = UDPHeader(src_port=sp, dst_port=dp, length=length)
    assert UDPHeader.unpack(header.pack()) == header


@settings(max_examples=40, deadline=None)
@given(icmp_type=byte8, code=byte8, rest=addr32,
       payload=st.binary(min_size=0, max_size=64))
def test_icmp_checksum_covers_everything(icmp_type, code, rest, payload):
    header = IcmpHeader(icmp_type=icmp_type, code=code, rest=rest)
    raw = header.pack(payload)
    assert verify_checksum(raw)
    again = IcmpHeader.unpack(raw)
    assert (again.icmp_type, again.code, again.rest) == (icmp_type, code,
                                                         rest)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_pcap_round_trip_random_packets(data):
    count = data.draw(st.integers(min_value=1, max_value=8))
    pairs = []
    now = 0.0
    for _ in range(count):
        now += data.draw(st.floats(min_value=0, max_value=1e-3,
                                   allow_nan=False))
        src = data.draw(addr32)
        dst = data.draw(addr32)
        length = data.draw(st.integers(min_value=64, max_value=1514))
        pairs.append((now, Packet.udp(IPv4Address(src), IPv4Address(dst),
                                      length=length)))
    buffer = io.BytesIO()
    assert write_pcap(buffer, pairs) == count
    buffer.seek(0)
    loaded = list(read_pcap(buffer))
    assert len(loaded) == count
    for (t0, p0), (t1, p1) in zip(pairs, loaded):
        assert t1 == pytest.approx(t0, abs=1e-6)
        assert (p1.length, int(p1.ip.src), int(p1.ip.dst)) == (
            p0.length, int(p0.ip.src), int(p0.ip.dst))
