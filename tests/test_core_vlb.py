"""Tests for VLB analysis and the switching guarantees (Sec. 3.2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ClassicVlb, DirectVlb, analyze, check_throughput
from repro.core.switching import check_fairness, jain_index
from repro.core.vlb import processing_rate_bound, required_internal_link_rate
from repro.errors import ConfigurationError
from repro.workloads import (
    TrafficMatrix,
    hotspot_matrix,
    permutation_matrix,
    uniform_matrix,
)

R = 10e9


class TestClassicVlb:
    def test_uniform_matrix_link_load_bound(self):
        # Sec. 3.2: each internal link carries at most 2R/N.
        n = 8
        matrix = uniform_matrix(n, R)
        analysis = analyze(matrix, R, ClassicVlb())
        assert analysis.max_link_load <= 2 * R / n * 1.001

    def test_worst_case_matrix_link_load_bound(self):
        n = 8
        matrix = permutation_matrix(n, R)
        analysis = analyze(matrix, R, ClassicVlb())
        assert analysis.max_link_load <= 2 * R / n * 1.001

    def test_processing_rate_approaches_3r(self):
        n = 16
        matrix = permutation_matrix(n, R)
        analysis = analyze(matrix, R, ClassicVlb())
        c = analysis.c_factor(R)
        # 2R own traffic + (1 - 2/N)R intermediate.
        assert 2.7 < c <= 3.0

    def test_direct_fraction_is_zero(self):
        analysis = analyze(uniform_matrix(4, R), R, ClassicVlb())
        assert analysis.direct_fraction == 0.0

    def test_intermediate_choice_uniform(self):
        policy = ClassicVlb()
        rng = random.Random(0)
        picks = [policy.choose_intermediate(0, 1, 8, rng)
                 for _ in range(4000)]
        counts = [picks.count(i) for i in range(8)]
        assert min(counts) > 350  # roughly uniform over all 8


class TestDirectVlb:
    def test_uniform_matrix_processing_near_2r(self):
        # The headline claim: close-to-uniform -> per-node rate ~2R.
        n = 8
        analysis = analyze(uniform_matrix(n, R), R, DirectVlb())
        c = analysis.c_factor(R)
        assert 2.0 <= c < 2.2

    def test_worst_case_processing_near_3r(self):
        n = 8
        analysis = analyze(permutation_matrix(n, R), R, DirectVlb())
        c = analysis.c_factor(R)
        assert 2.8 < c <= 3.0

    def test_direct_fraction_uniform_vs_permutation(self):
        n = 8
        uniform = analyze(uniform_matrix(n, R), R, DirectVlb())
        perm = analyze(permutation_matrix(n, R), R, DirectVlb())
        # Uniform demand R/7 vs direct allowance R/8: most goes direct.
        assert uniform.direct_fraction > 0.8
        # Permutation: only R/8 of R per pair goes direct.
        assert perm.direct_fraction == pytest.approx(1 / 8, rel=0.01)

    def test_intermediate_never_src_or_dst(self):
        policy = DirectVlb()
        rng = random.Random(1)
        for _ in range(500):
            pick = policy.choose_intermediate(2, 5, 8, rng)
            assert pick not in (2, 5)
            assert 0 <= pick < 8

    def test_intermediate_covers_all_candidates(self):
        policy = DirectVlb()
        rng = random.Random(2)
        picks = {policy.choose_intermediate(0, 7, 8, rng)
                 for _ in range(200)}
        assert picks == set(range(1, 7))

    def test_bad_headroom(self):
        with pytest.raises(ConfigurationError):
            DirectVlb(headroom=0)


class TestBounds:
    def test_required_internal_link_rate(self):
        assert required_internal_link_rate(8, R) == pytest.approx(2 * R / 8)
        with pytest.raises(ConfigurationError):
            required_internal_link_rate(1, R)

    def test_processing_rate_bound(self):
        assert processing_rate_bound(R, uniform=True) == 2 * R
        assert processing_rate_bound(R, uniform=False) == 3 * R


class TestThroughputGuarantee:
    def test_admissible_uniform_passes(self):
        n = 8
        check = check_throughput(uniform_matrix(n, R), R,
                                 internal_link_bps=2 * R / n * 1.05,
                                 node_processing_bps=2.2 * R)
        assert check.ok

    def test_worst_case_needs_3r(self):
        # The 2R/N link bound is the classic-VLB guarantee; Direct VLB
        # spreads remainders over n-2 intermediates and needs a bit more.
        n = 8
        matrix = permutation_matrix(n, R)
        too_small = check_throughput(matrix, R,
                                     internal_link_bps=2 * R / n * 1.05,
                                     node_processing_bps=2.2 * R,
                                     policy=ClassicVlb())
        assert not too_small.ok
        enough = check_throughput(matrix, R,
                                  internal_link_bps=2 * R / n * 1.05,
                                  node_processing_bps=3.0 * R,
                                  policy=ClassicVlb())
        assert enough.ok

    def test_inadmissible_matrix_rejected(self):
        overloaded = TrafficMatrix([[0, 2 * R], [R, 0]])
        check = check_throughput(overloaded, R, R, 3 * R)
        assert not check.ok
        assert "admissible" in check.detail

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=3, max_value=10),
           seed=st.integers(min_value=0, max_value=999))
    def test_vlb_bounds_hold_for_random_admissible_matrices(self, n, seed):
        """Property: for any admissible matrix, classic VLB keeps links
        within 2R/N and nodes within 3R."""
        rng = random.Random(seed)
        raw = [[0.0 if i == j else rng.random() for j in range(n)]
               for i in range(n)]
        # Scale rows/columns into admissibility.
        matrix = TrafficMatrix(raw)
        scale = R / max(max(matrix.row_sum(i) for i in range(n)),
                        max(matrix.col_sum(i) for i in range(n)))
        matrix = matrix.scaled(scale)
        assert matrix.is_admissible(R)
        analysis = analyze(matrix, R, ClassicVlb())
        assert analysis.max_link_load <= 2 * R / n * 1.0001
        assert analysis.max_node_processing <= 3 * R * 1.0001


class TestFairness:
    def test_fair_counts_pass(self):
        assert check_fairness({0: 100, 1: 105, 2: 95})

    def test_unfair_counts_fail(self):
        assert not check_fairness({0: 100, 1: 10, 2: 100})

    def test_jain_index(self):
        assert jain_index({0: 50, 1: 50}) == pytest.approx(1.0)
        assert jain_index({0: 100, 1: 0}) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            check_fairness({})
