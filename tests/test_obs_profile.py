"""Tests for the span profiler and the latency decomposition."""

import pytest

from repro.click.simrun import TimedForwardingRun, TimedPipelineRun
from repro.core import RouteBricksRouter
from repro.hw import nehalem_server
from repro.obs import (
    STAGES,
    LatencyBreakdown,
    MetricsRegistry,
    SpanProfiler,
    aggregate_breakdowns,
    decompose_trace,
    trace_delivered,
)
from repro.obs.profile import first_poll_after
from repro.workloads.matrices import uniform_matrix
from repro.workloads.spec import WorkloadSpec


class TestSpanProfiler:
    def test_charge_accumulates_self_values(self):
        prof = SpanProfiler()
        prof.charge(100, "core0", "src")
        prof.charge(50, "core0", "src")
        prof.charge(25, "core0", "dst")
        assert prof.self_value("core0", "src") == 150
        assert prof.self_value("core0", "dst") == 25

    def test_total_is_inclusive_over_prefix(self):
        prof = SpanProfiler()
        prof.charge(100, "core0", "src")
        prof.charge(25, "core0", "dst")
        prof.charge(7, "core1", "src")
        assert prof.total_value("core0") == 125
        assert prof.total_value() == 132

    def test_span_stack_scopes_charges(self):
        prof = SpanProfiler()
        with prof.span("core0"):
            prof.charge(10, "lookup")
        assert prof.self_value("core0", "lookup") == 10

    def test_begin_event_clears_leaked_frames(self):
        prof = SpanProfiler()
        prof.push("core0")  # a callback that died mid-span
        prof.begin_event()
        prof.charge(5, "src")
        assert prof.self_value("src") == 5

    def test_zero_charges_are_dropped_negative_rejected(self):
        prof = SpanProfiler()
        prof.charge(0, "core0")
        assert len(prof) == 0
        with pytest.raises(ValueError):
            prof.charge(-1, "core0")

    def test_collapsed_stack_format(self):
        prof = SpanProfiler()
        prof.charge(100.4, "core0", "src")
        prof.charge(25, "core0", "dst")
        assert prof.collapsed() == "run;core0;dst 25\nrun;core0;src 100"

    def test_leaf_totals_skip(self):
        prof = SpanProfiler()
        prof.charge(10, "core0", "src")
        prof.charge(99, "core0", "empty_poll")
        prof.charge(5, "core1", "src")
        assert prof.leaf_totals(skip=("empty_poll",)) == {"src": 15}

    def test_table_rows_carry_self_and_total(self):
        prof = SpanProfiler()
        prof.charge(10, "core0", "src")
        rows = {row["frames"]: row for row in prof.table()}
        assert rows["run"]["total"] == 10
        assert rows["run"]["self"] == 0
        assert rows["run;core0;src"]["self"] == 10


class TestFirstPollAfter:
    def test_picks_first_poll_strictly_after_arrival(self):
        assert first_poll_after([1.0, 2.0, 3.0], 1.0, 3.0) == 2.0

    def test_clamps_to_pickup(self):
        assert first_poll_after([1.0, 5.0], 2.0, 3.0) == 3.0

    def test_empty_falls_back_to_pickup(self):
        assert first_poll_after([], 1.0, 3.0) == 3.0


class TestDecomposition:
    def test_stages_sum_exactly_by_construction(self):
        breakdown = LatencyBreakdown(
            packet_id=1, end_to_end_sec=1e-6,
            stages={stage: (1e-6 / len(STAGES)) for stage in STAGES})
        assert breakdown.stage_sum() == pytest.approx(1e-6)
        assert not breakdown.conserved()  # "other" share is too large

    def test_decompose_classifies_server_hops(self):
        trace = {"packet_id": 7, "hops": [
            {"site": "arrival", "time": 0.0},
            {"site": "poll", "time": 1e-6},
            {"site": "pickup", "time": 3e-6},
            {"site": "service_done", "time": 4e-6},
        ]}
        b = decompose_trace(trace)
        assert b.end_to_end_sec == pytest.approx(4e-6)
        assert b.stages["poll_wait"] == pytest.approx(1e-6)
        assert b.stages["rx_ring_wait"] == pytest.approx(2e-6)
        assert b.stages["element_service"] == pytest.approx(1e-6)
        assert b.conserved(rel_tol=0.01)
        assert trace_delivered(trace)

    def test_undelivered_trace_detected(self):
        trace = {"packet_id": 7, "hops": [
            {"site": "arrival", "time": 0.0},
            {"site": "dropped", "time": 1e-6},
        ]}
        assert not trace_delivered(trace)


def _forwarding_run(profile=True, duration=0.5e-3, seed=0):
    registry = MetricsRegistry(enabled=True, profile=profile,
                               trace_sample_every=16)
    run = TimedPipelineRun(nehalem_server(), "forwarding",
                           packet_bytes=64, metrics=registry)
    report = run.run(5e9, duration_sec=duration, seed=seed)
    return registry, report


class TestConservation:
    """Satellite: stage sums equal end-to-end latency within 1 %."""

    @pytest.mark.parametrize("preset", ["forwarding", "ipsec"])
    def test_pipeline_run_conserves_latency(self, preset):
        registry = MetricsRegistry(enabled=True, profile=True,
                                   trace_sample_every=16)
        run = TimedPipelineRun(nehalem_server(), preset,
                               packet_bytes=64, metrics=registry)
        run.run(3e9, duration_sec=0.5e-3, seed=0)
        delivered = [t for t in registry.tracer.traces if trace_delivered(t)]
        assert len(delivered) >= 10
        for trace in delivered:
            breakdown = decompose_trace(trace)
            assert breakdown.conserved(rel_tol=0.01), \
                "stage sum diverges on %r" % trace.sites()

    def test_cluster_run_conserves_latency(self):
        registry = MetricsRegistry(enabled=True, profile=True,
                                   trace_sample_every=8)
        router = RouteBricksRouter(num_nodes=4, resequence=True, seed=3)
        workload = WorkloadSpec.fixed(1024, seed=1).with_matrix(
            uniform_matrix(4, 4e9))
        router.simulate(workload, until=2e-3, rate_limited_egress=True,
                        metrics=registry)
        delivered = [t for t in registry.tracer.traces if trace_delivered(t)]
        assert len(delivered) >= 10
        aggregate = aggregate_breakdowns(registry.tracer.traces)
        assert aggregate["max_residual_fraction"] <= 0.01
        # The cluster decomposition names transit stages too.
        assert aggregate["stage_fractions"]["vlb_hop_transit"] > 0
        assert aggregate["stage_fractions"]["element_service"] > 0

    def test_forwarding_runner_conserves_latency(self):
        registry = MetricsRegistry(enabled=True, profile=True,
                                   trace_sample_every=16)
        run = TimedForwardingRun(nehalem_server(), packet_bytes=64,
                                 metrics=registry)
        run.run(3e9, duration_sec=0.5e-3, seed=0)
        delivered = [t for t in registry.tracer.traces if trace_delivered(t)]
        assert len(delivered) >= 10
        for trace in delivered:
            assert decompose_trace(trace).conserved(rel_tol=0.01)


class TestDeterminism:
    """Satellite: identical collapsed-stack output across seeded runs."""

    def test_profiler_output_is_deterministic(self):
        first, _ = _forwarding_run(seed=42)
        second, _ = _forwarding_run(seed=42)
        collapsed_a = first.profiler.collapsed()
        collapsed_b = second.profiler.collapsed()
        assert collapsed_a  # non-trivial profile
        assert collapsed_a == collapsed_b

    def test_cluster_profiler_is_deterministic(self):
        outputs = []
        for _ in range(2):
            registry = MetricsRegistry(enabled=True, profile=True)
            router = RouteBricksRouter(num_nodes=4, seed=7)
            workload = WorkloadSpec.fixed(740, seed=2).with_matrix(
                uniform_matrix(4, 3e9))
            router.simulate(workload, until=1e-3, metrics=registry)
            outputs.append(registry.profiler.collapsed())
        assert outputs[0]
        assert outputs[0] == outputs[1]


class TestOverheadGuard:
    """Satellite: profiling off must not change simulated behavior."""

    def test_profiling_does_not_perturb_run(self):
        plain = MetricsRegistry(enabled=True, profile=False)
        run = TimedPipelineRun(nehalem_server(), "forwarding",
                               packet_bytes=64, metrics=plain)
        baseline = run.run(5e9, duration_sec=0.5e-3, seed=0)
        baseline_events = plain.get("sim_events").totals()["count"]

        profiled, report = _forwarding_run(profile=True)
        assert report.forwarded_packets == baseline.forwarded_packets
        assert report.total_polls == baseline.total_polls
        assert report.empty_polls == baseline.empty_polls
        events = profiled.get("sim_events").totals()["count"]
        assert events == baseline_events
        assert plain.profiler is None
        assert len(profiled.profiler) > 0

    def test_disabled_registry_has_no_profiler(self):
        assert MetricsRegistry(enabled=False).profiler is None

    def test_snapshot_carries_profile_section(self):
        registry, _ = _forwarding_run()
        snapshot = registry.snapshot()
        profile = snapshot["profile"]
        assert profile["paths"] == len(registry.profiler)
        assert profile["self_total"] > 0
        assert profile["collapsed"]
