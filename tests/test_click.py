"""Tests for the Click-like dataplane: elements, graph, scheduler."""

import pytest

from repro import calibration as cal
from repro.click import (
    CheckIPHeader,
    Classifier,
    CounterElement,
    DecIPTTL,
    Discard,
    EtherEncap,
    FlowHashSwitch,
    IPsecESPEncap,
    LookupIPRoute,
    PacketQueue,
    PollDevice,
    RouterGraph,
    RoundRobinSwitch,
    Scheduler,
    Tee,
    ToDevice,
)
from repro.crypto import EspContext
from repro.errors import ConfigurationError, SchedulingError
from repro.hw import nehalem_server
from repro.net import IPv4Address, MACAddress, Packet
from repro.routing import Route, RoutingTable


def _udp(dst="10.1.0.5", length=64, **kw):
    return Packet.udp("192.168.0.1", dst, length=length, **kw)


class TestElements:
    def test_counter_counts(self):
        counter = CounterElement()
        sink = Discard()
        counter.connect_to(sink)
        for _ in range(3):
            counter.receive(_udp(length=100))
        assert counter.count == 3
        assert counter.byte_count == 300
        assert sink.packets_dropped == 3

    def test_tee_duplicates(self):
        tee = Tee(3)
        sinks = [Discard(name="d%d" % i) for i in range(3)]
        for i, sink in enumerate(sinks):
            tee.connect_to(sink, output=i)
        tee.receive(_udp())
        assert all(s.packets_in == 1 for s in sinks)

    def test_classifier_routes_by_predicate(self):
        classifier = Classifier([lambda p: p.length < 100])
        small = CounterElement(name="small")
        rest = CounterElement(name="rest")
        classifier.connect_to(small, output=0).connect_to(Discard(name="d1"))
        classifier.connect_to(rest, output=1).connect_to(Discard(name="d2"))
        classifier.receive(_udp(length=64))
        classifier.receive(_udp(length=1024))
        assert small.count == 1
        assert rest.count == 1

    def test_classifier_no_catch_all_drops(self):
        classifier = Classifier([lambda p: False], catch_all=False)
        classifier.connect_to(Discard(), output=0)
        classifier.receive(_udp())
        assert classifier.packets_dropped == 1

    def test_packet_queue_push_pull(self):
        queue = PacketQueue(capacity=2)
        queue.receive(_udp())
        queue.receive(_udp())
        queue.receive(_udp())  # overflows
        assert queue.packets_dropped == 1
        assert queue.pull() is not None
        assert len(queue) == 1

    def test_round_robin_switch(self):
        switch = RoundRobinSwitch(2)
        sinks = [CounterElement(name="c%d" % i) for i in range(2)]
        for i, sink in enumerate(sinks):
            switch.connect_to(sink, output=i)
            sink.connect_to(Discard(name="dd%d" % i))
        for _ in range(4):
            switch.receive(_udp())
        assert [s.count for s in sinks] == [2, 2]

    def test_flow_hash_switch_pins_flows(self):
        switch = FlowHashSwitch(4)
        sinks = [CounterElement(name="c%d" % i) for i in range(4)]
        for i, sink in enumerate(sinks):
            switch.connect_to(sink, output=i)
            sink.connect_to(Discard(name="dd%d" % i))
        for _ in range(10):
            switch.receive(_udp(src_port=777))
        assert max(s.count for s in sinks) == 10  # all on one output

    def test_dangling_output_raises_on_push(self):
        counter = CounterElement()
        with pytest.raises(ConfigurationError):
            counter.receive(_udp())

    def test_double_connect_rejected(self):
        counter = CounterElement()
        counter.connect_to(Discard())
        with pytest.raises(ConfigurationError):
            counter.connect_to(Discard())


class TestIPElements:
    def test_check_ip_header_drops_non_ip(self):
        check = CheckIPHeader()
        sink = CounterElement()
        check.connect_to(sink)
        sink.connect_to(Discard())
        check.receive(Packet(length=64))  # no IP header
        check.receive(_udp())
        assert check.invalid == 1
        assert sink.count == 1

    def test_dec_ttl_updates_checksum_incrementally(self):
        dec = DecIPTTL()
        sink = CounterElement()
        dec.connect_to(sink, output=0)
        sink.connect_to(Discard())
        packet = _udp()
        packet.ip.pack()  # stamp a valid checksum
        before = packet.ip.checksum
        dec.receive(packet)
        assert packet.ip.ttl == 63
        assert packet.ip.checksum != before
        # The updated checksum must match a full recompute.
        expected = packet.ip.checksum
        packet.ip.pack()
        assert packet.ip.checksum == expected

    def test_dec_ttl_expires(self):
        dec = DecIPTTL()
        dec.connect_to(Discard(), output=0)
        packet = _udp(ttl=1)
        dec.receive(packet)
        assert dec.expired == 1
        assert dec.packets_dropped == 1

    def test_lookup_route_selects_port(self):
        table = RoutingTable()
        table.add_route("10.1.0.0/16",
                        Route(port=1, next_hop=IPv4Address("10.1.0.1")))
        lookup = LookupIPRoute(table, n_ports=2)
        sinks = [CounterElement(name="p%d" % i) for i in range(2)]
        miss = CounterElement(name="miss")
        for i, sink in enumerate(sinks):
            lookup.connect_to(sink, output=i)
            sink.connect_to(Discard(name="pd%d" % i))
        lookup.connect_to(miss, output=2)
        miss.connect_to(Discard(name="missd"))
        lookup.receive(_udp(dst="10.1.2.3"))
        lookup.receive(_udp(dst="99.0.0.1"))
        assert sinks[1].count == 1
        assert miss.count == 1
        assert lookup.misses == 1

    def test_ether_encap_rewrites_macs(self):
        table = RoutingTable()
        mac = MACAddress("02:00:00:00:00:07")
        table.add_route("10.0.0.0/8",
                        Route(port=0, next_hop=IPv4Address("10.0.0.1"),
                              next_hop_mac=mac))
        lookup = LookupIPRoute(table, n_ports=1)
        encap = EtherEncap(src_mac=MACAddress("02:00:00:00:00:01"))
        sink = CounterElement()
        lookup.connect_to(encap, output=0)
        lookup.connect_to(Discard(name="m"), output=1)
        encap.connect_to(sink)
        sink.connect_to(Discard(name="s"))
        packet = _udp(dst="10.5.5.5")
        lookup.receive(packet)
        assert packet.eth.dst == mac
        assert packet.eth.src == MACAddress("02:00:00:00:00:01")

    def test_full_ip_path(self):
        """CheckIPHeader -> DecIPTTL -> LookupIPRoute -> EtherEncap chain."""
        table = RoutingTable()
        table.add_route("0.0.0.0/0",
                        Route(port=0, next_hop=IPv4Address("10.0.0.1")))
        check = CheckIPHeader()
        dec = DecIPTTL()
        lookup = LookupIPRoute(table, n_ports=1)
        encap = EtherEncap(src_mac=MACAddress(1))
        out = CounterElement()
        check.connect_to(dec)
        dec.connect_to(lookup, output=0)
        lookup.connect_to(encap, output=0)
        lookup.connect_to(Discard(name="m"), output=1)
        encap.connect_to(out)
        out.connect_to(Discard(name="s"))
        packet = _udp(dst="8.8.8.8")
        check.receive(packet)
        assert out.count == 1
        assert packet.ip.ttl == 63


class TestIPsecElement:
    def _context(self):
        return EspContext(spi=1, key=b"k" * 16,
                          tunnel_src=IPv4Address("172.16.0.1"),
                          tunnel_dst=IPv4Address("172.16.0.2"))

    def test_modeled_mode_grows_packet(self):
        element = IPsecESPEncap(self._context(), functional=False)
        sink = CounterElement()
        element.connect_to(sink)
        sink.connect_to(Discard())
        packet = _udp(length=64)
        element.receive(packet)
        assert sink.count == 1
        assert packet.length > 64
        assert packet.length % 16 == 0

    def test_functional_mode_encrypts(self):
        element = IPsecESPEncap(self._context(), functional=True)
        got = []

        class Sink(CounterElement):
            def process(self, packet, port):
                got.append(packet)

        element.connect_to(Sink())
        element.receive(_udp(length=128))
        assert len(got) == 1
        assert got[0].ip.proto == 50  # ESP

    def test_non_ip_dropped(self):
        element = IPsecESPEncap(self._context())
        element.connect_to(Discard())
        element.receive(Packet(length=64))
        assert element.failed == 1

    def test_cycle_cost_scales_with_size(self):
        element = IPsecESPEncap(self._context())
        small = element.resource_cost(_udp(length=64)).cpu_cycles
        large = element.resource_cost(_udp(length=1500)).cpu_cycles
        assert large > small + 1000


class TestGraph:
    def test_validate_catches_dangling(self):
        graph = RouterGraph()
        graph.add(CounterElement(name="c"))
        with pytest.raises(ConfigurationError):
            graph.validate()

    def test_validate_allows_optional_outputs(self):
        graph = RouterGraph()
        dec = graph.add(DecIPTTL(name="ttl"))
        sink = graph.add(Discard(name="d"))
        dec.connect_to(sink, output=0)
        graph.validate()  # output 1 is optional

    def test_duplicate_names_rejected(self):
        graph = RouterGraph()
        graph.add(Discard(name="x"))
        with pytest.raises(ConfigurationError):
            graph.add(Discard(name="x"))

    def test_lookup_and_stats(self):
        graph = RouterGraph()
        counter = graph.add(CounterElement(name="c"))
        sink = graph.add(Discard(name="d"))
        counter.connect_to(sink)
        counter.receive(_udp())
        assert graph["c"] is counter
        assert graph.stats()["c"]["in"] == 1
        with pytest.raises(ConfigurationError):
            graph["nope"]


class TestScheduler:
    def _forwarding_setup(self, queues_per_port=8, same_core=True):
        server = nehalem_server(num_ports=2, queues_per_port=queues_per_port)
        scheduler = Scheduler()
        thread = scheduler.spawn(server.cores[0])
        poll = PollDevice(server.port(0), queue_id=0)
        to_dev = ToDevice(server.port(1), queue_id=0)
        poll.connect_to(to_dev)
        thread.add_poll_task(poll)
        if same_core:
            thread.own(to_dev)
        else:
            other = scheduler.spawn(server.cores[1])
            other.own(to_dev)
        return server, scheduler, poll, to_dev

    def test_forwarding_moves_packets(self):
        server, scheduler, poll, to_dev = self._forwarding_setup()
        for _ in range(10):
            server.port(0).rx_queues[0].push(_udp())
        moved = scheduler.run_rounds(1)
        assert moved == 10
        assert len(to_dev.drain()) == 10

    def test_empty_poll_tracking(self):
        server, scheduler, poll, _ = self._forwarding_setup()
        scheduler.run_rounds(5)
        assert poll.empty_polls == 5

    def test_rules_clean_config(self):
        _, scheduler, _, _ = self._forwarding_setup(same_core=True)
        assert scheduler.validate_rules() == []

    def test_rule1_violation_shared_queue(self):
        server = nehalem_server(num_ports=1, queues_per_port=1)
        scheduler = Scheduler()
        t0 = scheduler.spawn(server.cores[0])
        t1 = scheduler.spawn(server.cores[1])
        poll_a = PollDevice(server.port(0), queue_id=0, name="pa")
        poll_b = PollDevice(server.port(0), queue_id=0, name="pb")
        poll_a.connect_to(Discard(name="da"))
        poll_b.connect_to(Discard(name="db"))
        t0.add_poll_task(poll_a)
        t1.add_poll_task(poll_b)
        violations = scheduler.validate_rules()
        assert violations  # same NIC queue from two cores

    def test_rule2_violation_pipeline(self):
        server = nehalem_server(num_ports=2, queues_per_port=8)
        scheduler = Scheduler()
        t0 = scheduler.spawn(server.cores[0])
        t1 = scheduler.spawn(server.cores[1])
        poll = PollDevice(server.port(0), queue_id=0)
        handoff = PacketQueue(name="handoff")
        to_dev = ToDevice(server.port(1), queue_id=0)
        poll.connect_to(handoff)
        t0.add_poll_task(poll)
        t1.add_pull_task(handoff, to_dev)
        violations = scheduler.validate_rules()
        assert any("handed off" in v for v in violations)

    def test_pipeline_still_forwards(self):
        server = nehalem_server(num_ports=2, queues_per_port=8)
        scheduler = Scheduler()
        t0 = scheduler.spawn(server.cores[0])
        t1 = scheduler.spawn(server.cores[1])
        poll = PollDevice(server.port(0), queue_id=0)
        handoff = PacketQueue(name="handoff")
        to_dev = ToDevice(server.port(1), queue_id=0)
        poll.connect_to(handoff)
        t0.add_poll_task(poll)
        t1.add_pull_task(handoff, to_dev)
        for _ in range(5):
            server.port(0).rx_queues[0].push(_udp())
        scheduler.run_rounds(2)
        assert len(to_dev.drain()) == 5

    def test_cycle_charging(self):
        server, scheduler, _, _ = self._forwarding_setup()
        for _ in range(100):
            server.port(0).rx_queues[0].push(_udp())
        scheduler.run_rounds(1)
        assert server.cores[0].cycles_used > 0

    def test_one_thread_per_core(self):
        server = nehalem_server()
        scheduler = Scheduler()
        scheduler.spawn(server.cores[0])
        with pytest.raises(SchedulingError):
            scheduler.spawn(server.cores[0])

    def test_device_bad_queue_ids(self):
        server = nehalem_server(num_ports=1, queues_per_port=2)
        with pytest.raises(ConfigurationError):
            PollDevice(server.port(0), queue_id=5)
        with pytest.raises(ConfigurationError):
            ToDevice(server.port(0), queue_id=5)
