"""Tests for the cluster router: analytic model and packet-level DES."""

import pytest

from repro import calibration as cal
from repro.core import RouteBricksRouter
from repro.core.latency import (
    cluster_latency_usec,
    latency_range_usec,
    server_latency_usec,
)
from repro.errors import ConfigurationError
from repro.workloads import FlowGenerator, WorkloadSpec


class TestAnalyticThroughput:
    def test_rb4_64b_matches_paper(self):
        result = RouteBricksRouter().max_throughput(WorkloadSpec.fixed(64))
        assert result.aggregate_gbps == pytest.approx(12.0, rel=0.02)
        assert result.binding == "cpu"

    def test_rb4_abilene_matches_paper(self):
        result = RouteBricksRouter().max_throughput(
            WorkloadSpec.fixed(cal.ABILENE_MEAN_PACKET_BYTES))
        assert result.aggregate_gbps == pytest.approx(35.0, rel=0.02)
        assert result.binding == "nic"

    def test_64b_in_expected_window(self):
        """Sec. 6.2: expected between 4 x 6.35/2 = 12.7 and 4 x 9.7/2 =
        19.4 Gbps before reordering-avoidance overhead; with it, 12."""
        no_overhead = RouteBricksRouter(
            use_flowlets=False).max_throughput(WorkloadSpec.fixed(64))
        assert 12.7 < no_overhead.aggregate_gbps < 19.4
        with_overhead = RouteBricksRouter().max_throughput(
            WorkloadSpec.fixed(64))
        assert with_overhead.aggregate_gbps < no_overhead.aggregate_gbps

    def test_worst_case_matrix_slower(self):
        router = RouteBricksRouter()
        uniform = router.max_throughput(WorkloadSpec.fixed(64), uniform=True)
        worst = router.max_throughput(WorkloadSpec.fixed(64), uniform=False)
        assert worst.aggregate_bps < uniform.aggregate_bps

    def test_port_rate_caps_throughput(self):
        # A very fast spec would be port-limited at 10 Gbps per node.
        from repro.hw.presets import NEHALEM_NEXT_GEN
        router = RouteBricksRouter(spec=NEHALEM_NEXT_GEN,
                                   nic_effective_bps=1e12,
                                   internal_link_bps=1e12)
        result = router.max_throughput(WorkloadSpec.fixed(1024))
        assert result.binding == "port"
        assert result.per_port_bps == pytest.approx(10e9)

    def test_rejects_tiny_cluster(self):
        with pytest.raises(ConfigurationError):
            RouteBricksRouter(num_nodes=1)

    def test_ipsec_cluster_much_slower(self):
        """Running IPsec at the input nodes (a VPN-gateway cluster) drops
        aggregate throughput roughly with the encryption tax."""
        router = RouteBricksRouter()
        routing = router.max_throughput(WorkloadSpec.fixed(64))
        ipsec = router.max_throughput(WorkloadSpec.fixed(64),
                                      ingress_app=cal.IPSEC)
        assert ipsec.binding == "cpu"
        assert ipsec.aggregate_bps < routing.aggregate_bps / 2.5

    def test_custom_ingress_app_integrates(self):
        from repro.perfmodel import define_application
        dpi = define_application("dpi", cycles_per_packet=4000)
        router = RouteBricksRouter()
        result = router.max_throughput(WorkloadSpec.fixed(64),
                                       ingress_app=dpi)
        assert 0 < result.aggregate_gbps < 12.0


class TestLatencyModel:
    def test_paper_range(self):
        direct, indirect = latency_range_usec()
        assert direct == pytest.approx(47.6, abs=0.1)
        assert indirect == pytest.approx(66.4, abs=0.1)

    def test_input_node_composition(self):
        # 4 DMA transfers + full batch wait + routing = ~24 us.
        assert server_latency_usec("input") == pytest.approx(23.84, abs=0.01)

    def test_lower_kn_cuts_latency(self):
        assert server_latency_usec("input", kn=1) < server_latency_usec(
            "input", kn=16)

    def test_rate_aware_batch_wait(self):
        # At high rates the batch fills fast: near-zero wait.
        fast = server_latency_usec("input", packet_rate_pps=1e8)
        slow = server_latency_usec("input", packet_rate_pps=None)
        assert fast < slow

    def test_more_hops_more_latency(self):
        assert cluster_latency_usec(3) > cluster_latency_usec(2)
        with pytest.raises(ConfigurationError):
            cluster_latency_usec(1)

    def test_bad_role(self):
        with pytest.raises(ConfigurationError):
            server_latency_usec("wizard")


def _gen(seed=1, packets_per_flow=240):
    # Heavy enough that the single direct path (10 Gbps) saturates and
    # load balancing engages, as in the paper's replay (Sec. 6.2).
    return FlowGenerator(num_flows=60, packets_per_flow=packets_per_flow,
                         packet_bytes=740, burst_size=8,
                         burst_gap_sec=1e-4, intra_burst_gap_sec=4e-7,
                         seed=seed)


class TestSimulation:
    def test_all_packets_delivered(self):
        router = RouteBricksRouter(seed=1)
        report = router.replay_pair(_gen().timed_packets())
        assert report.delivered_packets == report.offered_packets
        assert report.delivery_ratio == 1.0

    def test_flowlets_cut_reordering(self):
        """The Sec. 6.2 headline: flowlet switching cuts reordering by
        more than an order of magnitude vs per-packet balancing."""
        flowlets = RouteBricksRouter(use_flowlets=True, seed=2).replay_pair(
            _gen().timed_packets())
        per_packet = RouteBricksRouter(use_flowlets=False, seed=2).replay_pair(
            _gen().timed_packets())
        assert per_packet.reordered_fraction > 0
        assert flowlets.reordered_fraction < per_packet.reordered_fraction / 5

    def test_flowlet_reordering_below_one_percent(self):
        report = RouteBricksRouter(use_flowlets=True, seed=3).replay_pair(
            _gen().timed_packets())
        assert report.reordered_fraction < 0.01

    def test_overload_forces_indirect_paths(self):
        report = RouteBricksRouter(seed=1).replay_pair(_gen().timed_packets())
        assert report.indirect_packets > 0
        assert report.direct_packets > 0

    def test_latency_within_model_range(self):
        report = RouteBricksRouter(seed=1).replay_pair(_gen().timed_packets())
        direct, indirect = latency_range_usec()
        assert report.latency_usec.min() >= direct - 0.5
        # Queueing delay can exceed the unloaded indirect figure, but the
        # median should sit inside the paper's range under this load.
        assert direct <= report.latency_usec.percentile(50) <= indirect + 30

    def test_uniform_traffic_mostly_direct(self):
        """With a uniform matrix well under capacity, adaptive Direct VLB
        sends everything directly (the Sec. 6.2 observation)."""
        router = RouteBricksRouter(seed=5)
        gen = FlowGenerator(num_flows=24, packets_per_flow=40,
                            packet_bytes=740, burst_gap_sec=1e-3, seed=7)
        events = []
        for index, (time, packet) in enumerate(gen.timed_packets()):
            ingress = index % 4
            egress = (ingress + 1 + index % 3) % 4
            events.append((time, ingress, egress, packet))
        events.sort(key=lambda e: e[0])
        report = router.simulate(events)
        assert report.indirect_fraction < 0.05
        assert report.delivered_packets == report.offered_packets

    def test_local_delivery_no_internal_hop(self):
        """A packet whose egress is its ingress node never crosses links."""
        router = RouteBricksRouter(seed=1)
        gen = FlowGenerator(num_flows=4, packets_per_flow=10, seed=3)
        events = [(t, 2, 2, p) for t, p in gen.timed_packets()]
        report = router.simulate(events)
        assert report.delivered_packets == report.offered_packets
        assert report.indirect_packets == 0
        assert all(s["intermediate"] == 0 for s in report.node_stats)

    def test_bad_node_ids_rejected(self):
        router = RouteBricksRouter()
        gen = FlowGenerator(num_flows=1, packets_per_flow=1)
        events = [(t, 9, 0, p) for t, p in gen.timed_packets()]
        with pytest.raises(ConfigurationError):
            router.simulate(events)

    def test_deterministic_for_seed(self):
        a = RouteBricksRouter(seed=11).replay_pair(_gen(seed=4).timed_packets())
        b = RouteBricksRouter(seed=11).replay_pair(_gen(seed=4).timed_packets())
        assert a.reordered_fraction == b.reordered_fraction
        assert a.indirect_packets == b.indirect_packets

    def test_node_stats_conserve_packets(self):
        report = RouteBricksRouter(seed=1).replay_pair(_gen().timed_packets())
        total_ingress = sum(s["ingress"] for s in report.node_stats)
        total_egress = sum(s["egress"] for s in report.node_stats)
        assert total_ingress == report.offered_packets
        assert total_egress == report.delivered_packets
