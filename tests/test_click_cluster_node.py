"""End-to-end tests of the Click-built cluster (core.click_node)."""

import pytest

from repro.core.click_node import ClickCluster, ClickClusterNode
from repro.errors import ConfigurationError
from repro.net import IPv4Address, Packet
from repro.net.icmp import TYPE_DEST_UNREACHABLE, TYPE_TIME_EXCEEDED
from repro.routing import Route, RoutingTable


@pytest.fixture
def table():
    t = RoutingTable()
    for node in range(4):
        t.add_route("10.%d.0.0/16" % node,
                    Route(port=node,
                          next_hop=IPv4Address("10.%d.0.1" % node)))
    return t


@pytest.fixture
def cluster(table):
    return ClickCluster(4, table, seed=1)


class TestPortArithmetic:
    def test_port_toward_and_back(self, table):
        node = ClickClusterNode(1, 4, table)
        for peer in (0, 2, 3):
            port = node.port_toward(peer)
            assert 1 <= port <= 3
            assert node.peer_of_port(port) == peer

    def test_external_port_guard(self, table):
        node = ClickClusterNode(0, 4, table)
        with pytest.raises(ConfigurationError):
            node.peer_of_port(0)

    def test_too_many_nodes(self, table):
        with pytest.raises(ConfigurationError):
            ClickClusterNode(0, 9, table)


class TestEndToEnd:
    def test_packets_exit_at_lpm_selected_node(self, cluster):
        for i in range(12):
            packet = Packet.udp("172.16.0.%d" % i, "10.%d.5.5" % (i % 4),
                                length=200, src_port=i)
            assert cluster.inject(0, packet)
        delivered = cluster.run(rounds=10)
        assert delivered == 12
        for node in range(4):
            assert len(cluster.delivered[node]) == 3
            for packet in cluster.delivered[node]:
                assert packet.ip.dst.value >> 16 == (10 << 8) | node

    def test_ttl_decremented_exactly_once(self, cluster):
        packet = Packet.udp("172.16.0.1", "10.3.5.5", length=200, ttl=9)
        cluster.inject(0, packet)
        cluster.run(rounds=10)
        (out,) = cluster.delivered[3]
        # Decremented at the input node only (the MAC trick skips IP
        # processing at transit nodes).
        assert out.ip.ttl == 8

    def test_routing_miss_generates_icmp(self, cluster):
        cluster.inject(1, Packet.udp("172.16.9.9", "203.0.113.7", length=90))
        cluster.run(rounds=10)
        (icmp,) = cluster.delivered[1]
        assert icmp.annotations["icmp_type"] == TYPE_DEST_UNREACHABLE
        assert icmp.ip.dst == IPv4Address("172.16.9.9")

    def test_ttl_expiry_generates_icmp(self, cluster):
        cluster.inject(2, Packet.udp("172.16.9.9", "10.0.5.5", length=90,
                                     ttl=1))
        cluster.run(rounds=10)
        (icmp,) = cluster.delivered[2]
        assert icmp.annotations["icmp_type"] == TYPE_TIME_EXCEEDED

    def test_any_to_any(self, cluster):
        count = 0
        for src in range(4):
            for dst in range(4):
                packet = Packet.udp("172.16.%d.%d" % (src, dst),
                                    "10.%d.1.1" % dst, length=128,
                                    src_port=src * 4 + dst)
                cluster.inject(src, packet)
                count += 1
        delivered = cluster.run(rounds=12)
        assert delivered == count
        assert all(len(v) == 4 for v in cluster.delivered.values())

    def test_transit_does_no_ip_work(self, cluster):
        cluster.inject(0, Packet.udp("172.16.0.1", "10.2.5.5", length=200))
        cluster.run(rounds=10)
        # The packet crossed node 2's transit path; its VLBTransit element
        # reports zero header-processing cycles by design.
        node2 = cluster.nodes[2]
        transits = [node2.graph["transit-p%d" % p] for p in (1, 2, 3)]
        assert sum(t.delivered for t in transits) == 1

    def test_quiescent_run_is_cheap(self, cluster):
        assert cluster.run(rounds=5) == 0

    def test_scheduler_rules_hold(self, cluster):
        for node in cluster.nodes:
            assert node.scheduler.validate_rules() == []

    def test_cycles_charged_per_node(self, cluster):
        from repro.net import Packet
        for i in range(8):
            cluster.inject(0, Packet.udp("172.16.1.%d" % i,
                                         "10.3.5.5", length=128,
                                         src_port=i))
        cluster.run(rounds=8)
        # The input node did routing work; the transit/egress node less.
        assert cluster.nodes[0].cycles_used() > 0
        assert cluster.nodes[3].cycles_used() >= 0
        assert cluster.nodes[0].cycles_used() > \
            cluster.nodes[3].cycles_used()
