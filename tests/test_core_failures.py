"""Failure handling in the cluster DES: routing around dead cables with
purely local information (a property VLB's design makes natural)."""

import pytest

from repro.core import RouteBricksRouter
from repro.errors import ConfigurationError
from repro.workloads import FixedSizeWorkload


def _events(num_nodes=4, packets=1200, ingress=0, egress=1, seed=7):
    workload = FixedSizeWorkload(packet_bytes=740, num_flows=32, seed=seed)
    gap = 1e-6
    return [(index * gap, ingress, egress, packet)
            for index, packet in enumerate(workload.packets(packets))]


class TestFailedLinks:
    def test_direct_link_down_traffic_detours(self):
        router = RouteBricksRouter(seed=1)
        report = router.simulate(_events(), failed_links=[(0, 1)])
        # Everything still arrives -- via intermediates.
        assert report.delivered_packets == report.offered_packets
        assert report.indirect_packets == report.offered_packets
        assert report.direct_packets == 0

    def test_no_failure_baseline_goes_direct(self):
        router = RouteBricksRouter(seed=1)
        report = router.simulate(_events())
        assert report.indirect_packets == 0

    def test_two_dead_links_still_one_path_left(self):
        router = RouteBricksRouter(seed=2)
        report = router.simulate(
            _events(), failed_links=[(0, 1), (0, 2)])
        # Only the 0->3->1 path remains.
        assert report.delivered_packets == report.offered_packets
        stats = {s["node"]: s for s in report.node_stats}
        assert stats[3]["intermediate"] == report.offered_packets

    def test_transit_committed_to_dead_hop_drops(self):
        # Force the path 0 -> 2 -> 1 while 2 -> 1 is dead: node 0 cannot
        # know, so packets are lost at node 2.
        router = RouteBricksRouter(seed=3)
        report = router.simulate(
            _events(), failed_links=[(0, 1), (0, 3), (2, 1)])
        assert report.dropped_packets == report.offered_packets
        assert report.delivered_packets == 0

    def test_failure_costs_latency(self):
        baseline = RouteBricksRouter(seed=4).simulate(_events())
        detoured = RouteBricksRouter(seed=4).simulate(
            _events(), failed_links=[(0, 1)])
        assert detoured.latency_usec.percentile(50) > \
            baseline.latency_usec.percentile(50)

    def test_bad_link_spec_rejected(self):
        router = RouteBricksRouter()
        with pytest.raises(ConfigurationError):
            router.simulate(_events(packets=1), failed_links=[(0, 9)])


class TestFailedHopsWiring:
    """Unit-level checks that ClusterNode's failed_hops drives every
    path-choice primitive (the knob the fault injector turns)."""

    def _node(self, seed=0):
        router = RouteBricksRouter(seed=seed)
        sim, nodes = router.build_simulation()
        return sim, nodes

    def test_failed_hop_is_never_available(self):
        _, nodes = self._node()
        nodes[0].failed_hops.add(1)
        assert not nodes[0]._link_available(1)
        assert not nodes[0]._path_available(1, egress=1)

    def test_fresh_path_skips_failed_intermediates(self):
        _, nodes = self._node()
        # Direct link 0->1 dead, intermediate 2 dead: only 3 remains.
        nodes[0].failed_hops.update({1, 2})
        for _ in range(20):
            assert nodes[0]._fresh_path(egress=1) == 3

    def test_all_hops_failed_falls_back_to_direct(self):
        _, nodes = self._node()
        nodes[0].failed_hops.update({1, 2, 3})
        # Nothing is reachable; the node still answers (the send will
        # drop) instead of deadlocking path choice.
        assert nodes[0]._fresh_path(egress=1) == 1

    def test_choose_path_moves_pinned_flowlet_off_dead_hop(self):
        from repro.net.packet import Packet
        sim, nodes = self._node()
        packet = Packet.udp("10.0.0.1", "10.1.0.1", length=740)
        first = nodes[0].choose_path(packet, egress=1, now=0.0)
        # Kill whatever hop the flowlet pinned; the next packet of the
        # same flow must move to a live path immediately.
        nodes[0].failed_hops.add(first)
        second = nodes[0].choose_path(packet, egress=1, now=1e-6)
        assert second != first
        assert second not in nodes[0].failed_hops

    def test_send_to_failed_hop_counts_a_drop(self):
        _, nodes = self._node()
        from repro.net.packet import Packet
        packet = Packet.udp("10.0.0.1", "10.1.0.1", length=740)
        nodes[0].failed_hops.add(1)
        before = nodes[0].dropped
        nodes[0]._send(packet, 1)
        assert nodes[0].dropped == before + 1

    def test_dead_node_drops_everything_it_touches(self):
        from repro.net.packet import Packet
        sim, nodes = self._node()
        nodes[0].fail()
        packet = Packet.udp("10.0.0.1", "10.1.0.1", length=740)
        nodes[0].ingress(packet, egress_node=1)
        nodes[0].receive_internal(packet)
        assert nodes[0].dropped == 2
        assert nodes[0].ingress_packets == 0

    def test_recover_resets_flowlet_state(self):
        _, nodes = self._node()
        from repro.net.packet import Packet
        packet = Packet.udp("10.0.0.1", "10.1.0.1", length=740)
        nodes[0].choose_path(packet, egress=1, now=0.0)
        table_before = nodes[0].flowlets
        nodes[0].fail()
        nodes[0].recover()
        assert nodes[0].alive
        assert nodes[0].flowlets is not table_before
        assert nodes[0].flowlets.delta_sec == table_before.delta_sec
