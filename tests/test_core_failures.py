"""Failure handling in the cluster DES: routing around dead cables with
purely local information (a property VLB's design makes natural)."""

import pytest

from repro.core import RouteBricksRouter
from repro.errors import ConfigurationError
from repro.workloads import FixedSizeWorkload


def _events(num_nodes=4, packets=1200, ingress=0, egress=1, seed=7):
    workload = FixedSizeWorkload(packet_bytes=740, num_flows=32, seed=seed)
    gap = 1e-6
    return [(index * gap, ingress, egress, packet)
            for index, packet in enumerate(workload.packets(packets))]


class TestFailedLinks:
    def test_direct_link_down_traffic_detours(self):
        router = RouteBricksRouter(seed=1)
        report = router.simulate(_events(), failed_links=[(0, 1)])
        # Everything still arrives -- via intermediates.
        assert report.delivered_packets == report.offered_packets
        assert report.indirect_packets == report.offered_packets
        assert report.direct_packets == 0

    def test_no_failure_baseline_goes_direct(self):
        router = RouteBricksRouter(seed=1)
        report = router.simulate(_events())
        assert report.indirect_packets == 0

    def test_two_dead_links_still_one_path_left(self):
        router = RouteBricksRouter(seed=2)
        report = router.simulate(
            _events(), failed_links=[(0, 1), (0, 2)])
        # Only the 0->3->1 path remains.
        assert report.delivered_packets == report.offered_packets
        stats = {s["node"]: s for s in report.node_stats}
        assert stats[3]["intermediate"] == report.offered_packets

    def test_transit_committed_to_dead_hop_drops(self):
        # Force the path 0 -> 2 -> 1 while 2 -> 1 is dead: node 0 cannot
        # know, so packets are lost at node 2.
        router = RouteBricksRouter(seed=3)
        report = router.simulate(
            _events(), failed_links=[(0, 1), (0, 3), (2, 1)])
        assert report.dropped_packets == report.offered_packets
        assert report.delivered_packets == 0

    def test_failure_costs_latency(self):
        baseline = RouteBricksRouter(seed=4).simulate(_events())
        detoured = RouteBricksRouter(seed=4).simulate(
            _events(), failed_links=[(0, 1)])
        assert detoured.latency_usec.percentile(50) > \
            baseline.latency_usec.percentile(50)

    def test_bad_link_spec_rejected(self):
        router = RouteBricksRouter()
        with pytest.raises(ConfigurationError):
            router.simulate(_events(packets=1), failed_links=[(0, 9)])
