"""Tests for the unified cost layer (repro.costs).

The load-bearing property is *exactness*: compiling a preset application's
Click pipeline element-by-element must reproduce the analytic per-packet
load vector bit-for-bit (well, to float tolerance), because both sides now
draw from the same :class:`~repro.costs.CostModel`.
"""

import warnings

import pytest

from repro import calibration as cal
from repro.analysis.bottleneck import pipeline_breakdown
from repro.click import (
    Discard,
    Element,
    PollDevice,
    RouterGraph,
    Tee,
    build_pipeline,
)
from repro.costs import (
    DEFAULT_CONFIG,
    DEFAULT_COST_MODEL,
    CostModel,
    ResourceVector,
    ServerConfig,
    ZERO_VECTOR,
    compile_loads,
    element_costs,
    traversal_probabilities,
)
from repro.errors import ConfigurationError
from repro.hw.presets import NEHALEM, XEON_SHARED_BUS
from repro.hw.server import Server
from repro.net.packet import Packet
from repro.perfmodel import per_packet_loads, rate_from_loads

COMPONENTS = ("cpu_cycles", "mem_bytes", "io_bytes", "pcie_bytes",
              "qpi_bytes")


def make_packet(size=64):
    return Packet(length=size)


# -- ResourceVector algebra -------------------------------------------------

class TestResourceVector:
    def test_defaults_are_zero(self):
        assert ResourceVector().is_zero()
        assert ZERO_VECTOR.is_zero()

    def test_add_and_sub(self):
        a = ResourceVector(cpu_cycles=100.0, mem_bytes=10.0)
        b = ResourceVector(cpu_cycles=20.0, io_bytes=5.0)
        s = a + b
        assert s.cpu_cycles == 120.0
        assert s.mem_bytes == 10.0
        assert s.io_bytes == 5.0
        d = s - b
        assert d.cpu_cycles == pytest.approx(a.cpu_cycles)
        assert d.io_bytes == pytest.approx(0.0)

    def test_scaled(self):
        v = ResourceVector(cpu_cycles=3.0, pcie_bytes=2.0).scaled(64)
        assert v.cpu_cycles == 192.0
        assert v.pcie_bytes == 128.0
        assert v.mem_bytes == 0.0

    def test_with_cpu_replaces_only_cpu(self):
        v = ResourceVector(cpu_cycles=1.0, qpi_bytes=7.0).with_cpu(42.0)
        assert v.cpu_cycles == 42.0
        assert v.qpi_bytes == 7.0

    def test_frozen(self):
        with pytest.raises(Exception):
            ResourceVector().cpu_cycles = 1.0


# -- CostModel ---------------------------------------------------------------

class TestCostModel:
    def test_bookkeeping_matches_table1(self):
        model = DEFAULT_COST_MODEL
        assert model.bookkeeping_cycles(32, 16) == pytest.approx(
            cal.BOOK_POLL_CYCLES / 32 + cal.BOOK_NIC_CYCLES / 16)
        # No batching: the full poll + NIC overhead per packet.
        assert model.bookkeeping_cycles(1, 1) == pytest.approx(
            cal.BOOK_POLL_CYCLES + cal.BOOK_NIC_CYCLES)

    def test_bookkeeping_rejects_bad_batches(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_COST_MODEL.bookkeeping_cycles(0, 16)

    def test_app_resolution(self):
        model = DEFAULT_COST_MODEL
        assert model.app("ipsec") is cal.APPLICATIONS["ipsec"]
        assert model.app(cal.MINIMAL_FORWARDING) is cal.MINIMAL_FORWARDING
        assert model.app(None) is cal.APPLICATIONS["routing"]
        with pytest.raises(ConfigurationError):
            model.app("quantum-routing")

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(baseline="nope")

    def test_app_vector_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_COST_MODEL.app_vector("routing", 0)

    def test_per_packet_vector_equals_legacy_loads(self):
        for app in ("forwarding", "routing", "ipsec"):
            for size in (64, 1024):
                vec = DEFAULT_COST_MODEL.per_packet_vector(app, size)
                legacy = per_packet_loads(cal.APPLICATIONS[app], size)
                for comp in COMPONENTS:
                    assert getattr(vec, comp) == pytest.approx(
                        getattr(legacy, comp), rel=1e-12)

    def test_single_queue_penalty(self):
        multi = DEFAULT_COST_MODEL.per_packet_vector(
            "routing", 64, ServerConfig(multi_queue=True))
        single = DEFAULT_COST_MODEL.per_packet_vector(
            "routing", 64, ServerConfig(multi_queue=False))
        assert single.cpu_cycles - multi.cpu_cycles == pytest.approx(
            cal.PIPELINE_SYNC_CYCLES)
        assert single.mem_bytes == multi.mem_bytes

    def test_shared_bus_cpi_inflation(self):
        base = DEFAULT_COST_MODEL.per_packet_vector("routing", 64)
        slow = DEFAULT_COST_MODEL.per_packet_vector(
            "routing", 64, DEFAULT_CONFIG, XEON_SHARED_BUS)
        assert slow.cpu_cycles == pytest.approx(
            base.cpu_cycles * XEON_SHARED_BUS.cpi_factor)

    def test_decomposition_sums_to_application(self):
        """rx + tx + increment terms reassemble the whole-app vector."""
        model = DEFAULT_COST_MODEL
        kp, kn = DEFAULT_CONFIG.kp, DEFAULT_CONFIG.kn
        for app in ("forwarding", "routing", "ipsec"):
            for size in (64, 1024):
                rx_b, rx_s = model.rx_terms(kp)
                tx_b, tx_s = model.tx_terms(kn)
                inc_b, inc_s = model.increment_terms(app)
                total = (rx_b + tx_b + inc_b
                         + (rx_s + tx_s + inc_s).scaled(size))
                expected = model.app_vector(app, size)
                expected = expected.with_cpu(
                    expected.cpu_cycles + model.bookkeeping_cycles(kp, kn))
                for comp in COMPONENTS:
                    assert getattr(total, comp) == pytest.approx(
                        getattr(expected, comp), rel=1e-9), (app, size, comp)

    def test_derive_application_matches_custom_app(self):
        app = DEFAULT_COST_MODEL.derive_application(
            "dpi", cycles_per_packet=2000.0, cycles_per_byte=3.0,
            extra_memory_lines=2.0)
        base = DEFAULT_COST_MODEL.baseline
        assert app.cpu_base_cycles == pytest.approx(
            base.cpu_base_cycles + 2000.0)
        assert app.cpu_per_byte_cycles == pytest.approx(
            base.cpu_per_byte_cycles + 3.0)
        assert app.mem_base_bytes == pytest.approx(
            base.mem_base_bytes + 2 * 64)
        with pytest.raises(ConfigurationError):
            DEFAULT_COST_MODEL.derive_application("bad")


# -- element costs ----------------------------------------------------------

class TestElementCosts:
    def test_affine_cost_evaluation(self):
        e = Element("e")
        e.set_cost_terms(ResourceVector(cpu_cycles=100.0),
                         ResourceVector(cpu_cycles=2.0, mem_bytes=1.0))
        v = e.resource_cost(make_packet(100))
        assert v.cpu_cycles == pytest.approx(300.0)
        assert v.mem_bytes == pytest.approx(100.0)

    def test_cycle_cost_shim_removed(self):
        # The PR1 cycle_cost deprecation shim is gone; the attribute no
        # longer exists on Element at all.
        e = Element("e")
        e.set_cost_terms(ResourceVector(cpu_cycles=5.0))
        assert not hasattr(e, "cycle_cost")
        assert e.resource_cost(make_packet(100)).cpu_cycles == \
            pytest.approx(5.0)

    def test_device_elements_carry_model_terms(self):
        server = Server(NEHALEM, num_ports=1, queues_per_port=1)
        poll = PollDevice(server.port(0), queue_id=0, kp=32)
        base, per_byte = DEFAULT_COST_MODEL.rx_terms(32)
        assert poll.cost_base == base
        assert poll.cost_per_byte == per_byte


# -- traversal probabilities -------------------------------------------------

def chain(*elements):
    graph = RouterGraph()
    graph.add_all(elements)
    for up, down in zip(elements, elements[1:]):
        up.connect_to(down)
    return graph


class TestTraversalProbabilities:
    def test_linear_chain_is_all_ones(self):
        graph = chain(Element("a"), Element("b"), Discard(name="c"))
        probs = traversal_probabilities(graph)
        assert probs == {"a": 1.0, "b": 1.0, "c": 1.0}

    def test_tee_duplicates(self):
        tee = Tee(2, name="tee")
        d1, d2 = Discard(name="d1"), Discard(name="d2")
        graph = RouterGraph()
        graph.add_all([tee, d1, d2])
        tee.connect_to(d1, output=0)
        tee.connect_to(d2, output=1)
        probs = traversal_probabilities(graph)
        assert probs["d1"] == 1.0
        assert probs["d2"] == 1.0

    def test_entry_weights(self):
        a, b = Element("a"), Element("b")
        sink = Discard(name="sink")
        merge = Element("merge")
        graph = RouterGraph()
        graph.add_all([a, b, merge, sink])
        a.connect_to(merge)
        b.connect_to(merge, peer_port=0)
        merge.connect_to(sink)
        probs = traversal_probabilities(graph, {"a": 0.75, "b": 0.25})
        assert probs["a"] == 0.75
        assert probs["b"] == 0.25
        assert probs["merge"] == pytest.approx(1.0)
        # Default: uniform split across entries.
        uniform = traversal_probabilities(graph)
        assert uniform["a"] == pytest.approx(0.5)

    def test_bad_entry_weights_rejected(self):
        graph = chain(Element("a"), Discard(name="z"))
        with pytest.raises(ConfigurationError):
            traversal_probabilities(graph, {"a": 1.5})
        with pytest.raises(ConfigurationError):
            traversal_probabilities(graph, {"a": -0.1})

    def test_cycle_rejected(self):
        entry, a, b = Element("entry"), Element("a"), Element("b")
        entry.connect_to(a)
        a.connect_to(b)
        b.connect_to(a)
        graph = RouterGraph()
        graph.add_all([entry, a, b])
        with pytest.raises(ConfigurationError, match="cycle"):
            traversal_probabilities(graph)

    def test_all_inputs_connected_rejected(self):
        a, b = Element("a"), Element("b")
        a.connect_to(b)
        b.connect_to(a)
        graph = RouterGraph()
        graph.add_all([a, b])
        with pytest.raises(ConfigurationError, match="no entry elements"):
            traversal_probabilities(graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            traversal_probabilities(RouterGraph())

    def test_peer_outside_graph_rejected(self):
        a, b = Element("a"), Element("b")
        a.connect_to(b)
        graph = RouterGraph()
        graph.add(a)
        with pytest.raises(ConfigurationError, match="not in the graph"):
            traversal_probabilities(graph)


# -- compile_loads: the preset-exactness acceptance criterion ----------------

@pytest.mark.parametrize("app", ["forwarding", "routing", "ipsec"])
@pytest.mark.parametrize("size", [64, 1024])
def test_compile_loads_reproduces_preset_vectors(app, size):
    """Element-wise compilation == the analytic per-packet load vector."""
    server = Server(NEHALEM, num_ports=1, queues_per_port=1)
    graph = build_pipeline(app, server)
    compiled = compile_loads(graph, packet_bytes=size)
    analytic = per_packet_loads(cal.APPLICATIONS[app], size)
    for comp in COMPONENTS:
        assert getattr(compiled, comp) == pytest.approx(
            getattr(analytic, comp), rel=1e-9), (app, size, comp)


def test_compile_loads_feeds_rate_solver():
    server = Server(NEHALEM, num_ports=1, queues_per_port=1)
    graph = build_pipeline("routing", server)
    loads = compile_loads(graph, packet_bytes=64)
    result = rate_from_loads(loads, 64)
    legacy = rate_from_loads(per_packet_loads(cal.IP_ROUTING, 64), 64)
    assert result.rate_bps == pytest.approx(legacy.rate_bps, rel=1e-9)
    assert result.bottleneck == legacy.bottleneck


def test_compile_loads_single_queue_penalty():
    server = Server(NEHALEM, num_ports=1, queues_per_port=1)
    graph = build_pipeline("forwarding", server)
    multi = compile_loads(graph, 64, ServerConfig(multi_queue=True))
    single = compile_loads(graph, 64, ServerConfig(multi_queue=False))
    assert single.cpu_cycles - multi.cpu_cycles == pytest.approx(
        cal.PIPELINE_SYNC_CYCLES)


def test_compile_loads_rejects_bad_size():
    server = Server(NEHALEM, num_ports=1, queues_per_port=1)
    graph = build_pipeline("forwarding", server)
    with pytest.raises(ConfigurationError):
        compile_loads(graph, packet_bytes=0)


def test_element_costs_rows():
    server = Server(NEHALEM, num_ports=1, queues_per_port=1)
    graph = build_pipeline("routing", server)
    rows = element_costs(graph, packet_bytes=64)
    by_name = {row["element"]: row for row in rows}
    assert by_name["src"]["class"] == "PollDevice"
    assert by_name["src"]["probability"] == 1.0
    assert by_name["src"]["cpu_cycles"] > 0
    # With a 1-port table the lookup never misses: the Discard arm is cold.
    discard = [row for row in rows if row["class"] == "Discard"]
    assert discard and discard[0]["probability"] == 0.0
    assert discard[0]["cpu_cycles"] == 0.0


def test_pipeline_breakdown_summary():
    server = Server(NEHALEM, num_ports=1, queues_per_port=1)
    graph = build_pipeline("routing", server)
    summary = pipeline_breakdown(graph, packet_bytes=64)
    assert summary["rate_gbps"] > 0
    assert summary["bottleneck"] in summary["loads"]
    assert len(summary["elements"]) == len(graph.elements())
    legacy = rate_from_loads(per_packet_loads(cal.IP_ROUTING, 64), 64)
    assert summary["rate_gbps"] == pytest.approx(
        legacy.rate_bps / 1e9, rel=1e-9)


def test_no_stray_deprecation_warnings_on_preset_compile():
    """The rewiring must not route through the deprecated shim."""
    server = Server(NEHALEM, num_ports=1, queues_per_port=1)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        graph = build_pipeline("ipsec", server)
        compile_loads(graph, packet_bytes=64)
