"""Tests for the Packet object and flow identification."""

import pytest

from repro.errors import PacketError
from repro.net import FiveTuple, IPv4Address, Packet, rss_hash
from repro.net.flows import queue_for_flow
from repro.net.headers import PROTO_TCP, PROTO_UDP


class TestPacketConstruction:
    def test_udp_factory(self):
        packet = Packet.udp("10.0.0.1", "10.0.0.2", length=128,
                            src_port=5000, dst_port=80)
        assert packet.length == 128
        assert packet.ip.proto == PROTO_UDP
        assert packet.ip.total_length == 128 - 14

    def test_tcp_factory(self):
        packet = Packet.tcp("1.1.1.1", "2.2.2.2", length=64, seq=77)
        assert packet.ip.proto == PROTO_TCP
        assert packet.l4.seq == 77

    def test_rejects_tiny_frame(self):
        with pytest.raises(PacketError):
            Packet(length=10)

    def test_packet_ids_unique(self):
        a = Packet.udp("1.1.1.1", "2.2.2.2")
        b = Packet.udp("1.1.1.1", "2.2.2.2")
        assert a.packet_id != b.packet_id


class TestPacketSerialization:
    def test_pack_pads_to_frame_length(self):
        packet = Packet.udp("10.0.0.1", "10.0.0.2", length=64)
        assert len(packet.pack()) == 64

    def test_pack_unpack_round_trip(self):
        packet = Packet.udp("10.9.8.7", "1.2.3.4", length=200,
                            src_port=1111, dst_port=2222)
        again = Packet.unpack(packet.pack())
        assert again.ip.src == packet.ip.src
        assert again.ip.dst == packet.ip.dst
        assert again.l4.src_port == 1111
        assert again.l4.dst_port == 2222
        assert again.length == 200

    def test_pack_rejects_overflow(self):
        packet = Packet.udp("1.1.1.1", "2.2.2.2", length=64,
                            payload=b"x" * 200)
        with pytest.raises(PacketError):
            packet.pack()

    def test_copy_preserves_headers_fresh_identity(self):
        packet = Packet.udp("3.3.3.3", "4.4.4.4", length=100)
        packet.flow_seq = 9
        clone = packet.copy()
        assert clone.packet_id != packet.packet_id
        assert clone.ip.dst == packet.ip.dst
        assert clone.flow_seq == 9


class TestFlows:
    def test_five_tuple_extraction(self):
        packet = Packet.udp("10.0.0.1", "10.0.0.2", src_port=5,
                            dst_port=6)
        ft = packet.five_tuple()
        assert ft == FiveTuple(IPv4Address("10.0.0.1"),
                               IPv4Address("10.0.0.2"), PROTO_UDP, 5, 6)

    def test_five_tuple_requires_ip(self):
        packet = Packet(length=64)
        with pytest.raises(PacketError):
            packet.five_tuple()

    def test_reversed(self):
        ft = FiveTuple(IPv4Address(1), IPv4Address(2), 6, 10, 20)
        back = ft.reversed()
        assert back.src == IPv4Address(2)
        assert back.dst_port == 10
        assert back.reversed() == ft

    def test_rss_hash_deterministic(self):
        ft = FiveTuple(IPv4Address("9.9.9.9"), IPv4Address("8.8.8.8"),
                       17, 53, 53)
        assert rss_hash(ft) == rss_hash(ft)

    def test_rss_hash_spreads_flows(self):
        counts = [0] * 8
        for port in range(4096):
            ft = FiveTuple(IPv4Address(port), IPv4Address(port * 7 + 1),
                           6, port & 0xFFFF, (port * 3) & 0xFFFF)
            counts[queue_for_flow(ft, 8)] += 1
        # Uniform would be 512 per queue; allow generous slack.
        assert min(counts) > 380
        assert max(counts) < 650

    def test_queue_for_flow_range(self):
        ft = FiveTuple(IPv4Address(1), IPv4Address(2), 6, 3, 4)
        for n in (1, 2, 7, 64):
            assert 0 <= queue_for_flow(ft, n) < n
        with pytest.raises(ValueError):
            queue_for_flow(ft, 0)

    def test_same_flow_same_queue(self):
        a = Packet.udp("10.0.0.1", "10.0.0.2", src_port=99, dst_port=80)
        b = Packet.udp("10.0.0.1", "10.0.0.2", src_port=99, dst_port=80,
                       length=1024)
        assert queue_for_flow(a.five_tuple(), 8) == queue_for_flow(
            b.five_tuple(), 8)


class TestWireEncoding:
    """The compact encoding packets ride across partition boundaries.

    The parallel DES runner pickles packets between worker processes;
    both pickle and to_wire()/from_wire() must be lossless -- including
    ``packet_id``, which decoding must restore *without* drawing a fresh
    id from the global counter.
    """

    def _loaded_packet(self):
        p = Packet.udp("10.0.0.1", "10.9.0.2", length=740, src_port=777,
                       dst_port=53, payload=b"abc")
        p.flow_seq = 42
        p.ingress_node = 1
        p.egress_node = 3
        p.path = [1, 2]
        p.arrival_time = 1.25e-4
        p.departure_time = 0.0
        p.annotations["hop_t"] = 1.25e-4
        return p

    def _assert_equal(self, a, b):
        assert b.packet_id == a.packet_id
        assert b.length == a.length
        assert (b.eth.dst, b.eth.src, b.eth.ethertype) == (
            a.eth.dst, a.eth.src, a.eth.ethertype)
        assert (b.ip.src, b.ip.dst, b.ip.ttl, b.ip.proto,
                b.ip.total_length) == (
            a.ip.src, a.ip.dst, a.ip.ttl, a.ip.proto, a.ip.total_length)
        assert (b.l4.src_port, b.l4.dst_port) == (
            a.l4.src_port, a.l4.dst_port)
        assert b.payload == a.payload
        assert b.flow_seq == a.flow_seq
        assert (b.ingress_node, b.egress_node) == (
            a.ingress_node, a.egress_node)
        assert b.path == a.path
        assert b.arrival_time == a.arrival_time
        assert b.annotations == a.annotations
        assert b.five_tuple() == a.five_tuple()

    def test_wire_round_trip_is_lossless(self):
        p = self._loaded_packet()
        self._assert_equal(p, Packet.from_wire(p.to_wire()))

    def test_pickle_round_trip_is_lossless(self):
        import pickle
        p = self._loaded_packet()
        self._assert_equal(p, pickle.loads(pickle.dumps(p)))

    def test_tcp_packet_round_trips(self):
        import pickle
        p = Packet.tcp("1.2.3.4", "5.6.7.8", seq=1234, length=1500)
        clone = pickle.loads(pickle.dumps(p))
        assert clone.l4.seq == 1234
        assert clone.five_tuple() == p.five_tuple()
        assert clone.ip.proto == PROTO_TCP

    def test_decoding_does_not_consume_packet_ids(self):
        p = self._loaded_packet()
        wire = p.to_wire()
        for _ in range(3):
            Packet.from_wire(wire)
        fresh = Packet.udp("10.0.0.1", "10.0.0.2")
        # Only the explicit constructions drew ids: decode never does.
        assert fresh.packet_id == p.packet_id + 1

    def test_wire_is_plain_data(self):
        # The encoding must stay cheap to pickle: ints, floats, tuples,
        # bytes, None, and one optional flat dict -- no custom classes.
        def plain(value):
            if isinstance(value, (int, float, str, bytes, type(None))):
                return True
            if isinstance(value, (tuple, list)):
                return all(plain(v) for v in value)
            if isinstance(value, dict):
                return all(plain(k) and plain(v) for k, v in value.items())
            return False
        assert plain(self._loaded_packet().to_wire())

    def test_addresses_pickle_standalone(self):
        import pickle
        addr = IPv4Address("192.168.7.9")
        assert pickle.loads(pickle.dumps(addr)) == addr
        ft = FiveTuple(IPv4Address(1), IPv4Address(2), 6, 3, 4)
        assert pickle.loads(pickle.dumps(ft)) == ft
