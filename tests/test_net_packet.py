"""Tests for the Packet object and flow identification."""

import pytest

from repro.errors import PacketError
from repro.net import FiveTuple, IPv4Address, Packet, rss_hash
from repro.net.flows import queue_for_flow
from repro.net.headers import PROTO_TCP, PROTO_UDP


class TestPacketConstruction:
    def test_udp_factory(self):
        packet = Packet.udp("10.0.0.1", "10.0.0.2", length=128,
                            src_port=5000, dst_port=80)
        assert packet.length == 128
        assert packet.ip.proto == PROTO_UDP
        assert packet.ip.total_length == 128 - 14

    def test_tcp_factory(self):
        packet = Packet.tcp("1.1.1.1", "2.2.2.2", length=64, seq=77)
        assert packet.ip.proto == PROTO_TCP
        assert packet.l4.seq == 77

    def test_rejects_tiny_frame(self):
        with pytest.raises(PacketError):
            Packet(length=10)

    def test_packet_ids_unique(self):
        a = Packet.udp("1.1.1.1", "2.2.2.2")
        b = Packet.udp("1.1.1.1", "2.2.2.2")
        assert a.packet_id != b.packet_id


class TestPacketSerialization:
    def test_pack_pads_to_frame_length(self):
        packet = Packet.udp("10.0.0.1", "10.0.0.2", length=64)
        assert len(packet.pack()) == 64

    def test_pack_unpack_round_trip(self):
        packet = Packet.udp("10.9.8.7", "1.2.3.4", length=200,
                            src_port=1111, dst_port=2222)
        again = Packet.unpack(packet.pack())
        assert again.ip.src == packet.ip.src
        assert again.ip.dst == packet.ip.dst
        assert again.l4.src_port == 1111
        assert again.l4.dst_port == 2222
        assert again.length == 200

    def test_pack_rejects_overflow(self):
        packet = Packet.udp("1.1.1.1", "2.2.2.2", length=64,
                            payload=b"x" * 200)
        with pytest.raises(PacketError):
            packet.pack()

    def test_copy_preserves_headers_fresh_identity(self):
        packet = Packet.udp("3.3.3.3", "4.4.4.4", length=100)
        packet.flow_seq = 9
        clone = packet.copy()
        assert clone.packet_id != packet.packet_id
        assert clone.ip.dst == packet.ip.dst
        assert clone.flow_seq == 9


class TestFlows:
    def test_five_tuple_extraction(self):
        packet = Packet.udp("10.0.0.1", "10.0.0.2", src_port=5,
                            dst_port=6)
        ft = packet.five_tuple()
        assert ft == FiveTuple(IPv4Address("10.0.0.1"),
                               IPv4Address("10.0.0.2"), PROTO_UDP, 5, 6)

    def test_five_tuple_requires_ip(self):
        packet = Packet(length=64)
        with pytest.raises(PacketError):
            packet.five_tuple()

    def test_reversed(self):
        ft = FiveTuple(IPv4Address(1), IPv4Address(2), 6, 10, 20)
        back = ft.reversed()
        assert back.src == IPv4Address(2)
        assert back.dst_port == 10
        assert back.reversed() == ft

    def test_rss_hash_deterministic(self):
        ft = FiveTuple(IPv4Address("9.9.9.9"), IPv4Address("8.8.8.8"),
                       17, 53, 53)
        assert rss_hash(ft) == rss_hash(ft)

    def test_rss_hash_spreads_flows(self):
        counts = [0] * 8
        for port in range(4096):
            ft = FiveTuple(IPv4Address(port), IPv4Address(port * 7 + 1),
                           6, port & 0xFFFF, (port * 3) & 0xFFFF)
            counts[queue_for_flow(ft, 8)] += 1
        # Uniform would be 512 per queue; allow generous slack.
        assert min(counts) > 380
        assert max(counts) < 650

    def test_queue_for_flow_range(self):
        ft = FiveTuple(IPv4Address(1), IPv4Address(2), 6, 3, 4)
        for n in (1, 2, 7, 64):
            assert 0 <= queue_for_flow(ft, n) < n
        with pytest.raises(ValueError):
            queue_for_flow(ft, 0)

    def test_same_flow_same_queue(self):
        a = Packet.udp("10.0.0.1", "10.0.0.2", src_port=99, dst_port=80)
        b = Packet.udp("10.0.0.1", "10.0.0.2", src_port=99, dst_port=80,
                       length=1024)
        assert queue_for_flow(a.five_tuple(), 8) == queue_for_flow(
            b.five_tuple(), 8)
