"""The analytic graceful-degradation model (repro.faults.degradation)."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    degradation_curve,
    linear_fraction,
    quadratic_fraction,
)
from repro.workloads import WorkloadSpec


class TestIdealCurves:
    def test_linear_is_surviving_port_fraction(self):
        assert linear_fraction(8, 0) == 1.0
        assert linear_fraction(8, 2) == 0.75
        assert linear_fraction(8, 8) == 0.0

    def test_quadratic_is_square_of_linear(self):
        for failed in range(9):
            assert quadratic_fraction(8, failed) == \
                pytest.approx(linear_fraction(8, failed) ** 2)


class TestDegradationCurve:
    def test_capacity_monotonically_degrades(self):
        report = degradation_curve(num_nodes=8)
        fractions = report.fractions()
        assert fractions[0] == 1.0
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] > 0.0     # degrades, never collapses to zero

    def test_uniform_traffic_degrades_linearly_for_few_failures(self):
        # The headline claim: with 1-2 of 8 servers down, uniform traffic
        # loses only the dead ports' share.
        report = degradation_curve(num_nodes=8)
        for failed in (1, 2):
            assert report.point(failed).capacity_fraction == pytest.approx(
                linear_fraction(8, failed), rel=0.1)

    def test_worst_case_degrades_quadratically(self):
        report = degradation_curve(num_nodes=8, uniform=False)
        for failed in (2, 4):
            assert report.point(failed).capacity_fraction == pytest.approx(
                quadratic_fraction(8, failed), rel=0.15)

    def test_worst_case_below_uniform(self):
        uniform = degradation_curve(num_nodes=8)
        worst = degradation_curve(num_nodes=8, uniform=False)
        for failed in (1, 2, 3):
            assert worst.point(failed).capacity_bps < \
                uniform.point(failed).capacity_bps

    def test_cluster_cut_below_two_nodes_is_dead(self):
        report = degradation_curve(num_nodes=4, max_failed=4)
        assert report.point(3).binding == "dead"
        assert report.point(3).capacity_bps == 0.0

    def test_report_round_trips_to_dict(self):
        report = degradation_curve(num_nodes=4)
        data = report.to_dict()
        assert data["kind"] == "DegradationReport"
        assert len(data["points"]) == 3
        assert data["points"][0]["capacity_fraction"] == 1.0

    def test_workload_must_be_spec(self):
        with pytest.raises(ConfigurationError):
            degradation_curve(num_nodes=4, workload=64)

    def test_custom_workload_accepted(self):
        report = degradation_curve(num_nodes=4,
                                   workload=WorkloadSpec.abilene())
        assert report.workload == "abilene"
        assert report.packet_bytes == pytest.approx(740, rel=0.01)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            degradation_curve(num_nodes=1)
        with pytest.raises(ConfigurationError):
            degradation_curve(num_nodes=4, max_failed=9)
