"""Tests for FIB aggregation, including lookup-equivalence properties."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError
from repro.net import Prefix
from repro.routing import RoutingTable, generate_rib
from repro.routing.aggregate import (
    _parent,
    _sibling,
    aggregate_routes,
    aggregate_table,
)


class TestHelpers:
    def test_sibling_flips_last_bit(self):
        assert _sibling(Prefix.parse("10.0.0.0/9")) == Prefix.parse(
            "10.128.0.0/9")
        assert _sibling(Prefix.parse("10.128.0.0/9")) == Prefix.parse(
            "10.0.0.0/9")

    def test_parent(self):
        assert _parent(Prefix.parse("10.128.0.0/9")) == Prefix.parse(
            "10.0.0.0/8")

    def test_default_route_has_neither(self):
        with pytest.raises(RoutingError):
            _sibling(Prefix(0, 0))
        with pytest.raises(RoutingError):
            _parent(Prefix(0, 0))


class TestAggregation:
    def test_sibling_merge(self):
        routes = {Prefix.parse("10.0.0.0/9"): "a",
                  Prefix.parse("10.128.0.0/9"): "a"}
        out = aggregate_routes(routes)
        assert out == {Prefix.parse("10.0.0.0/8"): "a"}

    def test_unequal_siblings_kept(self):
        routes = {Prefix.parse("10.0.0.0/9"): "a",
                  Prefix.parse("10.128.0.0/9"): "b"}
        assert aggregate_routes(routes) == routes

    def test_cascading_merge(self):
        routes = {Prefix.parse("10.0.0.0/10"): "a",
                  Prefix.parse("10.64.0.0/10"): "a",
                  Prefix.parse("10.128.0.0/9"): "a"}
        out = aggregate_routes(routes)
        assert out == {Prefix.parse("10.0.0.0/8"): "a"}

    def test_redundant_child_dropped(self):
        routes = {Prefix.parse("10.0.0.0/8"): "a",
                  Prefix.parse("10.5.0.0/16"): "a",
                  Prefix.parse("10.6.0.0/16"): "b"}
        out = aggregate_routes(routes)
        assert Prefix.parse("10.5.0.0/16") not in out
        assert out[Prefix.parse("10.6.0.0/16")] == "b"

    def test_sibling_merge_overrides_shadowed_parent(self):
        # The parent's own value is unreachable once both children exist.
        routes = {Prefix.parse("10.0.0.0/8"): "old",
                  Prefix.parse("10.0.0.0/9"): "new",
                  Prefix.parse("10.128.0.0/9"): "new"}
        out = aggregate_routes(routes)
        assert out == {Prefix.parse("10.0.0.0/8"): "new"}

    def test_empty(self):
        assert aggregate_routes({}) == {}


class TestTableAggregation:
    def test_rib_shrinks_and_stays_equivalent(self):
        table = generate_rib(num_entries=400, num_ports=2, seed=9)
        compact, stats = aggregate_table(table)
        assert stats["aggregated_routes"] <= stats["original_routes"]
        rng = random.Random(1)
        for _ in range(500):
            probe = rng.getrandbits(32)
            assert compact.lookup(probe) == table.lookup(probe)

    def test_two_port_table_aggregates_more_than_eight_port(self):
        few = aggregate_table(generate_rib(500, num_ports=2, seed=3))[1]
        many = aggregate_table(generate_rib(500, num_ports=8, seed=3))[1]
        assert few["reduction"] >= many["reduction"]


_prefix = st.tuples(st.integers(min_value=0, max_value=(1 << 32) - 1),
                    st.integers(min_value=1, max_value=16))


@settings(max_examples=40, deadline=None)
@given(entries=st.lists(st.tuples(_prefix, st.integers(1, 3)),
                        min_size=1, max_size=25),
       probes=st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                       min_size=1, max_size=40))
def test_aggregation_preserves_all_lookups(entries, probes):
    """Property: the aggregated map answers every lookup identically."""
    original = RoutingTable(engine="trie")
    routes = {}
    for (addr, length), value in entries:
        prefix = Prefix.from_address(addr, length)
        routes[prefix] = value
    for prefix, value in routes.items():
        from repro.routing import Route
        from repro.net import IPv4Address
        original.add_route(prefix, Route(port=value,
                                         next_hop=IPv4Address(value)))
    compact_map = aggregate_routes(dict(original.routes()))
    compact = RoutingTable(engine="trie")
    for prefix, route in compact_map.items():
        compact.add_route(prefix, route)
    for probe in probes:
        assert compact.lookup(probe) == original.lookup(probe), hex(probe)
    # Probe prefix boundaries too.
    for prefix in routes:
        assert compact.lookup(prefix.network) == original.lookup(
            prefix.network)
