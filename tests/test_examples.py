"""Smoke tests: every example script runs to completion.

Examples are part of the public surface; these tests execute each one
in-process (with argv pinned) and sanity-check its output.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name, argv=None):
    out = io.StringIO()
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        with redirect_stdout(out):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return out.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "Saturation rates" in out
        assert "9.77 Gbps" in out

    def test_topology_planner(self):
        out = _run("topology_planner.py", ["64"])
        assert "N=64" in out
        assert "100% throughput: True" in out

    def test_bottleneck_explorer(self):
        out = _run("bottleneck_explorer.py")
        assert "cpu-bound" in out or "cpu" in out
        assert "packet-size sweep" in out

    def test_vpn_gateway(self):
        out = _run("vpn_gateway.py")
        assert "decrypted and verified 25/25" in out

    def test_custom_application(self):
        out = _run("custom_application.py")
        assert "dpi" in out
        assert "Single-server saturation" in out

    def test_growing_router(self):
        out = _run("growing_router.py")
        assert "RB4 (4 servers)" in out
        assert "consistent" in out

    @pytest.mark.slow
    def test_ip_router_cluster(self):
        out = _run("ip_router_cluster.py")
        assert "cluster throughput" in out
        assert "delivered" in out

    @pytest.mark.slow
    def test_trace_replay(self, tmp_path):
        out = _run("trace_replay.py", [str(tmp_path / "t.pcap")])
        assert "flowlets" in out
        assert "per-packet" in out
