"""Tests for the M/D/1 queueing-latency model."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.queueing import (
    latency_vs_load_curve,
    loaded_cluster_latency_usec,
    md1_wait_quantile_sec,
    md1_wait_sec,
    server_service_time_sec,
    utilization_for_latency_budget,
)


class TestMd1:
    def test_zero_load_zero_wait(self):
        assert md1_wait_sec(1e-6, 0.0) == 0.0

    def test_half_load(self):
        # W_q = rho / (2 mu (1 - rho)) = 0.5 * service at rho = 0.5.
        assert md1_wait_sec(2e-6, 0.5) == pytest.approx(1e-6)

    def test_wait_explodes_near_saturation(self):
        assert md1_wait_sec(1e-6, 0.99) > 40 * md1_wait_sec(1e-6, 0.5)

    def test_monotone_in_load(self):
        waits = [md1_wait_sec(1e-6, rho) for rho in (0.1, 0.5, 0.9)]
        assert waits == sorted(waits)

    def test_quantile_exceeds_mean(self):
        mean = md1_wait_sec(1e-6, 0.7)
        p99 = md1_wait_quantile_sec(1e-6, 0.7, 0.99)
        assert p99 > 3 * mean

    def test_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            md1_wait_sec(0, 0.5)
        with pytest.raises(ConfigurationError):
            md1_wait_sec(1e-6, 1.0)
        with pytest.raises(ConfigurationError):
            md1_wait_quantile_sec(1e-6, 0.5, 1.5)


class TestServerService:
    def test_64b_forwarding_service_time(self):
        # 1173.6 cycles at 2.8 GHz = ~0.42 us per packet per core.
        assert server_service_time_sec() == pytest.approx(0.42e-6, rel=0.02)

    def test_scales_with_app(self):
        from repro import calibration as cal
        fwd = server_service_time_sec(cal.MINIMAL_FORWARDING)
        ipsec = server_service_time_sec(cal.IPSEC)
        assert ipsec > 6 * fwd


class TestClusterLatencyUnderLoad:
    def test_unloaded_matches_base_model(self):
        from repro.core.latency import cluster_latency_usec
        assert loaded_cluster_latency_usec(0.0, hops=2) == pytest.approx(
            cluster_latency_usec(2))

    def test_latency_grows_with_load(self):
        curve = latency_vs_load_curve()
        latencies = [row["latency_usec"] for row in curve]
        assert latencies == sorted(latencies)

    def test_indirect_path_pays_more_queueing(self):
        direct = loaded_cluster_latency_usec(0.8, hops=2)
        indirect = loaded_cluster_latency_usec(0.8, hops=3)
        assert indirect > direct

    def test_budget_inversion(self):
        rho = utilization_for_latency_budget(60.0, hops=2)
        assert 0 < rho < 1
        assert loaded_cluster_latency_usec(rho, hops=2) == pytest.approx(
            60.0, abs=0.5)

    def test_budget_below_base_rejected(self):
        with pytest.raises(ConfigurationError):
            utilization_for_latency_budget(10.0, hops=2)


class TestAgainstSimulation:
    def test_des_latency_within_model_envelope(self):
        """The DES's median latency under moderate load sits between the
        unloaded model and the M/D/1 curve at high utilization."""
        from repro.core import RouteBricksRouter
        from repro.workloads import FlowGenerator

        gen = FlowGenerator(num_flows=40, packets_per_flow=120,
                            packet_bytes=740, burst_size=8,
                            burst_gap_sec=2e-4, intra_burst_gap_sec=4e-7,
                            seed=2)
        report = RouteBricksRouter(seed=3).replay_pair(gen.timed_packets())
        p50 = report.latency_usec.percentile(50)
        unloaded = loaded_cluster_latency_usec(0.0, hops=2)
        heavy = loaded_cluster_latency_usec(0.97, hops=3)
        assert unloaded <= p50 <= heavy
