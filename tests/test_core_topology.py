"""Tests for topologies and provisioning (Fig. 3, Sec. 3.3)."""

import pytest

from repro.core import (
    ClosReference,
    FullMesh,
    KAryNFly,
    Torus,
    provision,
    switched_cluster_equivalent_servers,
)
from repro.core.provision import (
    SERVER_MODELS,
    max_mesh_ports,
    servers_required,
)
from repro.errors import TopologyError


class TestFullMesh:
    def test_feasible_mesh_server_count(self):
        mesh = FullMesh(num_ports=8, ports_per_server=1, fanout=32)
        assert mesh.feasible()
        assert mesh.total_servers() == 8

    def test_infeasible_when_fanout_exceeded(self):
        mesh = FullMesh(num_ports=64, ports_per_server=1, fanout=32)
        assert not mesh.feasible()
        with pytest.raises(TopologyError):
            mesh.total_servers()

    def test_two_ports_per_server_halves_cluster(self):
        mesh = FullMesh(num_ports=16, ports_per_server=2, fanout=32)
        assert mesh.total_servers() == 8

    def test_internal_link_rate(self):
        # 2sR/M per link (Sec. 3.3).
        mesh = FullMesh(num_ports=8, ports_per_server=1, fanout=32)
        assert mesh.internal_link_rate_bps(10e9) == pytest.approx(2.5e9)

    def test_links_complete(self):
        mesh = FullMesh(num_ports=4, ports_per_server=1, fanout=8)
        links = mesh.links()
        assert len(links) == 4 * 3
        assert (0, 0) not in links

    def test_rejects_tiny(self):
        with pytest.raises(TopologyError):
            FullMesh(num_ports=1, ports_per_server=1, fanout=4)


class TestKAryNFly:
    def test_paper_1024_port_data_point(self):
        """Sec. 3.3: current servers need ~2 intermediate servers per port
        at N = 1024."""
        fly = KAryNFly(num_ports=1024, ports_per_server=1, fanout=32)
        per_port = fly.intermediate_servers() / 1024
        assert per_port == pytest.approx(2.0, rel=0.01)
        assert fly.total_servers() == 1024 + fly.intermediate_servers()
        assert fly.total_servers() == pytest.approx(3072, abs=2)

    def test_stage_count_grows_logarithmically(self):
        small = KAryNFly(num_ports=64, ports_per_server=1, fanout=32)
        large = KAryNFly(num_ports=1024, ports_per_server=1, fanout=32)
        assert small.stages < large.stages

    def test_faster_servers_cheaper(self):
        slow = KAryNFly(num_ports=512, ports_per_server=1, fanout=32)
        fast = KAryNFly(num_ports=512, ports_per_server=2, fanout=144)
        assert fast.total_servers() < slow.total_servers()

    def test_rejects_tiny_fanout(self):
        with pytest.raises(TopologyError):
            KAryNFly(num_ports=64, ports_per_server=1, fanout=2)


class TestTorus:
    def test_torus_larger_than_fly(self):
        """The paper rejected the torus because the fly yields smaller
        clusters for the practical parameter range."""
        n = 512
        fly = KAryNFly(num_ports=n, ports_per_server=1, fanout=32)
        torus = Torus(num_ports=n, ports_per_server=1)
        assert torus.total_servers() > fly.total_servers()

    def test_degree(self):
        assert Torus(num_ports=64, ports_per_server=1,
                     dimensions=3).degree() == 6

    def test_average_hops_grow_with_radix(self):
        small = Torus(num_ports=64, ports_per_server=1)
        large = Torus(num_ports=4096, ports_per_server=1)
        assert large.average_hops() > small.average_hops()


class TestClosReference:
    def test_single_switch_for_small_clusters(self):
        clos = ClosReference(num_ports=32)
        assert clos.switch_count_ports() == 48

    def test_small_cluster_equivalent_cost(self):
        # 32 ports: 32 servers + one 48-port switch (= 12 server equiv).
        assert switched_cluster_equivalent_servers(32) == 32 + 12

    def test_grows_superlinearly(self):
        per_port_small = switched_cluster_equivalent_servers(64) / 64
        per_port_large = switched_cluster_equivalent_servers(1024) / 1024
        assert per_port_large > per_port_small

    def test_switched_always_costs_more_than_server_cluster(self):
        """Fig. 3's conclusion: the Arista-based switched cluster costs
        more than the server-based cluster at every port count."""
        for n in (8, 32, 64, 128, 512, 1024, 2048):
            switched = switched_cluster_equivalent_servers(n)
            ours = servers_required(n, "current")
            assert switched > ours, n


class TestProvisioning:
    def test_mesh_limits_per_configuration(self):
        """Fig. 3: mesh-to-fly transitions at 32 / 128 / 256+ ports."""
        assert max_mesh_ports("current") == 32
        assert max_mesh_ports("more-nics") == 128
        assert max_mesh_ports("faster") >= 256

    def test_provision_picks_mesh_when_feasible(self):
        assert isinstance(provision(16, "current"), FullMesh)
        assert isinstance(provision(64, "current"), KAryNFly)

    def test_server_counts_monotone_in_ports(self):
        for model in SERVER_MODELS:
            counts = [servers_required(n, model)
                      for n in (4, 8, 16, 32, 64, 128, 256, 512, 1024)]
            assert counts == sorted(counts), model

    def test_faster_config_cheapest_everywhere(self):
        for n in (8, 64, 512, 2048):
            assert servers_required(n, "faster") <= servers_required(
                n, "more-nics") <= servers_required(n, "current")

    def test_unknown_model(self):
        with pytest.raises(TopologyError):
            provision(16, "hyperscale")

    def test_cost_scales_linearly_with_ports_in_mesh(self):
        """Sec. 2: adding n ports costs O(n) while the mesh holds."""
        c8 = servers_required(8, "current")
        c16 = servers_required(16, "current")
        c32 = servers_required(32, "current")
        assert c16 - c8 == 8
        assert c32 - c16 == 16
