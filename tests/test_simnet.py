"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net import Packet
from repro.simnet import FiniteQueue, Histogram, Link, RngStreams, Simulator
from repro.simnet.stats import Counter, TimeSeries


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(0.5, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 1.5]

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_max_events(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(i + 1.0, lambda: count.append(1))
        sim.run(max_events=3)
        assert len(count) == 3

    def test_max_events_still_advances_clock_to_until(self):
        """The run() contract: ``until`` lands the clock on the horizon
        even when the event budget stops execution first."""
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(i + 1.0, lambda i=i: fired.append(i))
        sim.run(until=10.0, max_events=2)
        assert fired == [0, 1]
        assert sim.now == 10.0

    def test_schedule_every_stays_on_grid(self):
        """Tick 10^6 of a 0.1 s heartbeat must land exactly on
        ``start + 10^6 * interval``; rescheduling by repeatedly adding
        the interval to the clock drifts off the grid long before
        that."""
        sim = Simulator()
        interval = 0.1  # not binary-exact: repeated addition drifts
        target = 10 ** 6 + 1  # callback k (0-based grid index k-1)
        ticks = [0]
        landed = {}

        def tick():
            ticks[0] += 1
            if ticks[0] == target:
                landed["now"] = sim.now

        sim.schedule_every(interval, tick)
        sim.run(max_events=target)
        start = interval  # first tick: now (0.0) + default start delay
        assert landed["now"] == start + 10 ** 6 * interval

    def test_events_run_counts_executions(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        cancelled = sim.schedule(2.0, lambda: None)
        cancelled.cancel()
        sim.schedule_timer(3.0, lambda: None)
        sim.run()
        assert sim.events_run == 2

    def test_wall_clock_accumulates(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.wall_clock_s == 0.0
        sim.run()
        assert sim.wall_clock_s > 0.0

    def test_cancelled_events_are_compacted(self):
        sim = Simulator()
        events = [sim.schedule(1.0 + i * 1e-6, lambda: None)
                  for i in range(1000)]
        for event in events[100:]:
            event.cancel()
        # Lazy deletion must not leave 900 dead entries in the heap.
        assert len(sim._heap) < 300
        sim.run()
        assert sim.events_run == 100

    def test_cancel_is_idempotent_and_noop_after_execution(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled
        ran = sim.schedule(2.0, lambda: None)
        sim.run()
        ran.cancel()  # already executed: not a cancellation
        assert not ran.cancelled
        # The swept cancellation was un-counted; the late cancel never
        # counted at all, so the dead tally is back to zero.
        assert sim._dead == 0

    def test_event_handle_exposes_time_seq_callback(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        second = sim.schedule(1.0, lambda: None)
        assert first.time == second.time == 1.0
        assert first.seq < second.seq
        assert first.callback is not None
        first.cancel()
        assert first.callback is None

    def test_schedule_timer_interleaves_with_heap_events(self):
        sim = Simulator()
        order = []
        sim.schedule_timer(1.0, lambda: order.append("w1"))
        sim.schedule(1.0, lambda: order.append("h1"))
        sim.schedule_timer(1.0, lambda: order.append("w2"))
        sim.schedule(2.0, lambda: order.append("h2"))
        sim.schedule_timer_at(2.0, lambda: order.append("w3"))
        sim.run()
        assert order == ["w1", "h1", "w2", "h2", "w3"]
        assert sim.now == 2.0

    def test_schedule_timer_rejects_past(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_timer(-0.5, lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_timer_at(0.5, lambda: None)

    def test_peek_time_covers_wheel(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule_timer(0.5, lambda: None)
        assert sim.peek_time() == 0.5
        sim.run()
        assert sim.peek_time() is None


class TestFiniteQueue:
    def test_fifo_order(self):
        q = FiniteQueue(capacity=3)
        for i in range(3):
            assert q.offer(i)
        assert [q.poll(), q.poll(), q.poll()] == [0, 1, 2]

    def test_overflow_drops(self):
        q = FiniteQueue(capacity=2)
        assert q.offer(1) and q.offer(2)
        assert not q.offer(3)
        assert q.dropped == 1
        assert q.drop_rate() == pytest.approx(1 / 3)

    def test_poll_empty(self):
        assert FiniteQueue(capacity=1).poll() is None

    def test_batch_poll(self):
        q = FiniteQueue(capacity=10)
        for i in range(5):
            q.offer(i)
        assert q.poll_batch(3) == [0, 1, 2]
        assert len(q) == 2

    def test_high_watermark(self):
        q = FiniteQueue(capacity=10)
        for i in range(4):
            q.offer(i)
        q.poll()
        assert q.high_watermark == 4

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            FiniteQueue(capacity=0)


class TestLink:
    def test_delivery_after_serialization_and_propagation(self):
        sim = Simulator()
        got = []
        link = Link(sim, "l", rate_bps=8e6, deliver=lambda p: got.append(sim.now),
                    propagation_sec=1e-3)
        packet = Packet.udp("1.1.1.1", "2.2.2.2", length=1000)  # 8000 bits
        assert link.send(packet)
        sim.run()
        # 8000 bits at 8 Mbps = 1 ms serialization + 1 ms propagation.
        assert got == [pytest.approx(2e-3)]

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        times = []
        link = Link(sim, "l", rate_bps=8e6, deliver=lambda p: times.append(sim.now),
                    propagation_sec=0.0)
        for _ in range(3):
            link.send(Packet.udp("1.1.1.1", "2.2.2.2", length=1000))
        sim.run()
        assert times == [pytest.approx(1e-3), pytest.approx(2e-3),
                         pytest.approx(3e-3)]

    def test_fifo_no_reordering_on_one_link(self):
        sim = Simulator()
        got = []
        link = Link(sim, "l", rate_bps=1e9, deliver=lambda p: got.append(p.flow_seq))
        for seq in range(20):
            packet = Packet.udp("1.1.1.1", "2.2.2.2", length=100)
            packet.flow_seq = seq
            link.send(packet)
        sim.run()
        assert got == list(range(20))

    def test_queue_overflow(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e3, deliver=lambda p: None,
                    queue_packets=2)
        results = [link.send(Packet.udp("1.1.1.1", "2.2.2.2", length=100))
                   for _ in range(5)]
        # One in flight + 2 queued; the rest dropped.
        assert results.count(False) >= 1
        assert link.queue.dropped >= 1

    def test_utilization(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=8e6, deliver=lambda p: None)
        link.send(Packet.udp("1.1.1.1", "2.2.2.2", length=1000))
        sim.run()
        assert link.utilization(2e-3) == pytest.approx(0.5)

    def test_queued_bits(self):
        sim = Simulator()
        link = Link(sim, "l", rate_bps=1e3, deliver=lambda p: None)
        link.send(Packet.udp("1.1.1.1", "2.2.2.2", length=100))  # in flight
        link.send(Packet.udp("1.1.1.1", "2.2.2.2", length=100))  # queued
        assert link.queued_bits() == 800


class TestRng:
    def test_deterministic_streams(self):
        a = RngStreams(seed=1).stream("x").random()
        b = RngStreams(seed=1).stream("x").random()
        assert a == b

    def test_independent_streams(self):
        streams = RngStreams(seed=1)
        assert streams.stream("x").random() != streams.stream("y").random()

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).stream("x").random()
        b = RngStreams(seed=2).stream("x").random()
        assert a != b


class TestStats:
    def test_counter(self):
        c = Counter()
        c.add("drops")
        c.add("drops", 2)
        assert c.get("drops") == 3
        assert c.get("missing") == 0
        with pytest.raises(ValueError):
            c.add("drops", -1)

    def test_histogram_percentiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(99) == 99
        assert h.min() == 1
        assert h.max() == 100
        assert h.mean() == pytest.approx(50.5)

    def test_histogram_unsorted_input(self):
        h = Histogram()
        for v in (5, 1, 3, 2, 4):
            h.observe(v)
        assert h.percentile(100) == 5
        assert h.cdf_at(3) == pytest.approx(0.6)

    def test_histogram_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().mean()
        with pytest.raises(ValueError):
            Histogram().percentile(50)

    def test_histogram_bad_percentile(self):
        h = Histogram()
        h.observe(1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_time_series_rate(self):
        ts = TimeSeries()
        ts.record(0.5, 100)
        ts.record(1.5, 200)
        assert ts.rate_over(0, 2) == pytest.approx(150)
        assert ts.total() == 300

    def test_time_series_order_enforced(self):
        ts = TimeSeries()
        ts.record(1.0, 1)
        with pytest.raises(ValueError):
            ts.record(0.5, 1)
