#!/usr/bin/env python
"""Plan a RouteBricks cluster for a target port count (Fig. 3 as a tool).

Given N external 10 Gbps ports and a server model, picks full mesh vs
k-ary n-fly, sizes the cluster, prices it against the switched-cluster
alternative, and checks the VLB switching guarantees for uniform and
worst-case traffic.

Run:  python examples/topology_planner.py [ports]
"""

import sys

from repro.core import (
    ClassicVlb,
    FullMesh,
    check_throughput,
    provision,
    switched_cluster_equivalent_servers,
)
from repro.core.mac_encoding import mac_trick_feasible
from repro.core.provision import SERVER_MODELS, cost_usd
from repro.core.vlb import processing_rate_bound, required_internal_link_rate
from repro.workloads import permutation_matrix, uniform_matrix

PORT_RATE = 10e9


def plan(num_ports):
    print("=== planning an N=%d port, 10 Gbps/port router ===" % num_ports)
    for name in ("current", "more-nics", "faster"):
        topo = provision(num_ports, name)
        kind = type(topo).__name__
        servers = topo.total_servers()
        line = "  %-10s %-9s %5d servers  ($%s)" % (
            name, kind, servers, format(cost_usd(servers), ","))
        if isinstance(topo, FullMesh):
            line += "  internal links: %.2f Gbps each" % (
                topo.internal_link_rate_bps(PORT_RATE) / 1e9)
        else:
            line += "  %d stages x %d intermediates" % (
                topo.stages, topo.servers_per_stage())
        print(line)
    switched = switched_cluster_equivalent_servers(num_ports)
    print("  %-10s %-9s %5d server-equivalents ($%s)"
          % ("switched", "Clos", switched, format(cost_usd(switched), ",")))
    print("  single-lookup MAC steering feasible: %s"
          % mac_trick_feasible(num_ports))

    # VLB guarantee check on the mesh (where one is feasible).
    n = min(num_ports, 8)
    print("\n  switching guarantees (classic VLB, %d-node mesh):" % n)
    for label, matrix in (("uniform", uniform_matrix(n, PORT_RATE)),
                          ("worst-case", permutation_matrix(n, PORT_RATE))):
        check = check_throughput(
            matrix, PORT_RATE,
            internal_link_bps=required_internal_link_rate(n, PORT_RATE) * 1.01,
            node_processing_bps=processing_rate_bound(PORT_RATE,
                                                      uniform=False),
            policy=ClassicVlb())
        print("    %-10s 100%% throughput: %-5s (c = %.2f, link util %.2f)"
              % (label, check.ok, check.max_node_c_factor,
                 check.max_link_utilization))


def main():
    ports = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    targets = [ports] if ports else [4, 32, 128, 1024]
    print("server models: %s\n" % ", ".join(sorted(SERVER_MODELS)))
    for n in targets:
        plan(n)
        print()


if __name__ == "__main__":
    main()
