#!/usr/bin/env python
"""Grow a router by adding servers (the Sec. 2 extensibility story).

Starts with a 4-node RB4-class cluster, then adds servers one at a time:
the control plane recomputes the mesh, re-provisions internal link rates,
redistributes the FIB, and the capacity/latency picture updates -- no
forklift, no centralized scheduler.

Run:  python examples/growing_router.py
"""

from repro import calibration as cal
from repro.analysis import format_table
from repro.core import RouteBricksRouter
from repro.core.control import ClusterManager
from repro.workloads import WorkloadSpec
from repro.core.mac_encoding import mac_trick_feasible
from repro.net import IPv4Address


def snapshot(manager, label):
    n = manager.num_nodes
    router = RouteBricksRouter(num_nodes=max(n, 2))
    throughput = router.max_throughput(
        WorkloadSpec.fixed(cal.ABILENE_MEAN_PACKET_BYTES))
    return {
        "step": label,
        "nodes": n,
        "ports_gbps": manager.capacity_bps() / 1e9,
        "aggregate_gbps": throughput.aggregate_gbps,
        "internal_link_gbps": manager.internal_link_rate_bps() / 1e9,
        "mesh_links": len(manager.mesh_links()),
        "mac_trick": mac_trick_feasible(n),
    }


def main():
    manager = ClusterManager()
    rows = []

    # Bootstrap: four servers, one 10G port each (RB4).
    for port in range(4):
        manager.add_node(external_port=port)
        manager.announce("10.%d.0.0/16" % port, port)
    manager.push_fibs()
    rows.append(snapshot(manager, "RB4 (4 servers)"))

    # Growth: add four more servers, one at a time.
    for port in range(4, 8):
        node = manager.add_node(external_port=port)
        manager.announce("10.%d.0.0/16" % port, port)
        version = manager.push_fibs()
        probe = IPv4Address("10.%d.1.1" % port)
        assert manager.check_consistency([probe])
        rows.append(snapshot(manager, "added server %d (v%d)"
                             % (node, version)))

    print(format_table(
        rows, ["step", "nodes", "ports_gbps", "aggregate_gbps",
               "internal_link_gbps", "mesh_links", "mac_trick"],
        title="Incremental growth of a RouteBricks cluster"))
    print("\nEvery FIB stayed consistent at each step; internal links get "
          "*cheaper* (2R/N) as the mesh grows.")


if __name__ == "__main__":
    main()
