#!/usr/bin/env python
"""Replay a pcap trace through the RB4 cluster.

Generates an Abilene-like trace, writes it to a real pcap file, reads it
back, and replays it through the 4-node cluster's packet-level simulation
— measuring reordering with and without the flowlet extension (the
Sec. 6.2 experiment, driven from an on-disk trace).  Also demonstrates the
Click config language for the measurement tap.

Run:  python examples/trace_replay.py [trace.pcap]
"""

import os
import sys
import tempfile

from repro.click.config import parse_config
from repro.core import RouteBricksRouter
from repro.workloads import FlowGenerator
from repro.workloads.pcapio import load_trace, save_trace


def make_trace(path):
    """Synthesize a bursty flow trace dense enough to overload one path."""
    gen = FlowGenerator(num_flows=60, packets_per_flow=200,
                        packet_bytes=740, burst_size=8,
                        burst_gap_sec=1e-4, intra_burst_gap_sec=4e-7, seed=1)
    count = save_trace(path, gen.timed_packets())
    print("wrote %d packets to %s (%.1f kB)"
          % (count, path, os.path.getsize(path) / 1e3))


def measurement_tap():
    """A Click-language config for the sampling tap used on egress."""
    graph = parse_config("""
        // sample 10% of delivered packets into a counter
        tap :: RandomSample(0.1);
        seen :: Counter;
        tap -> seen -> Discard;
    """)
    return graph


def replay(path, use_flowlets):
    router = RouteBricksRouter(use_flowlets=use_flowlets, seed=3)
    # renumber_flows restores per-flow sequence numbers (the wire format
    # cannot carry them), which the reordering metric needs.
    report = router.replay_pair(load_trace(path, renumber_flows=True))
    return report


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        tempfile.gettempdir(), "routebricks_replay.pcap")
    make_trace(path)

    tap = measurement_tap()
    for mode, use_flowlets in (("flowlets", True), ("per-packet", False)):
        report = replay(path, use_flowlets)
        print("%-11s delivered %d  reordered %.3f%%  indirect %.1f%%  "
              "p50 latency %.1f us"
              % (mode, report.delivered_packets,
                 report.reordered_fraction * 100,
                 report.indirect_fraction * 100,
                 report.latency_usec.percentile(50)))

    # Run the sampled tap over the trace for a final sanity count.
    total = 0
    for _, packet in load_trace(path):
        tap["tap"].receive(packet)
        total += 1
    print("tap sampled %d of %d packets (~10%%)"
          % (tap["seen"].count, total))


if __name__ == "__main__":
    main()
