#!/usr/bin/env python
"""Extend the router with new functionality and predict its performance.

The paper's closing challenge (Sec. 8) is an API that lets a programmer
add non-traditional packet processing *and* predict the performance
implications.  This example defines three hypothetical applications --
a NAT, a flow-table-heavy monitor, and a payload-scanning DPI -- and asks
the model where each one lands on the prototype server and on an RB4-size
cluster.

Run:  python examples/custom_application.py
"""

from repro.analysis import format_table
from repro.analysis.report import ascii_bars
from repro.perfmodel.custom_app import define_application, predict

APPLICATIONS = [
    # A NAT: header rewrite + one flow-table touch.
    define_application("nat", instructions_per_packet=350,
                       cycles_per_instruction=1.2, extra_memory_lines=2,
                       touches_payload=False),
    # A per-flow monitor: several counter updates in a big table.
    define_application("flow-monitor", instructions_per_packet=700,
                       cycles_per_instruction=1.4, extra_memory_lines=6,
                       touches_payload=False),
    # Signature-scanning DPI: touches every payload byte.
    define_application("dpi", instructions_per_packet=900,
                       cycles_per_instruction=0.9, cycles_per_byte=6.0,
                       extra_memory_lines=4),
]


def main():
    rows = []
    for app in APPLICATIONS:
        for size in (64, 740):
            result = predict(app, packet_bytes=size, cluster_nodes=4)
            rows.append({
                "application": app.name,
                "packet_bytes": size,
                "server_gbps": result["server_gbps"],
                "cluster_gbps": result["cluster_gbps"],
                "bottleneck": result["bottleneck"],
            })
    print(format_table(rows, ["application", "packet_bytes", "server_gbps",
                              "cluster_gbps", "bottleneck"],
                       title="Predicted performance of new applications"))

    labels = ["%s/%dB" % (r["application"], r["packet_bytes"])
              for r in rows]
    print()
    print(ascii_bars(labels, [r["server_gbps"] for r in rows],
                     title="Single-server saturation", unit=" Gbps"))


if __name__ == "__main__":
    main()
