#!/usr/bin/env python
"""A VPN gateway: the paper's IPsec workload, end to end.

Encrypts real packets with the from-scratch AES-128/ESP implementation
through a Click path, verifies decryption at the far end, and uses the
performance model to show where software encryption leaves the server
(Fig. 8: 1.4 Gbps at 64 B, 4.45 Gbps on Abilene-like traffic).

Run:  python examples/vpn_gateway.py
"""

from repro import calibration as cal
from repro.click import CounterElement, IPsecESPEncap
from repro.crypto import EspContext, esp_decapsulate
from repro.net import IPv4Address
from repro.perfmodel import max_loss_free_rate
from repro.workloads import WorkloadSpec
from repro.workloads import AbileneTrace


class CollectSink(CounterElement):
    """Terminal element that keeps the packets it receives."""

    n_outputs = 0

    def __init__(self, name=""):
        super().__init__(name)
        self.packets = []

    def process(self, packet, port):
        self.packets.append(packet)


def main():
    key = bytes(range(16))
    outbound = EspContext(spi=0x1001, key=key,
                          tunnel_src=IPv4Address("192.0.2.1"),
                          tunnel_dst=IPv4Address("198.51.100.1"))
    inbound = EspContext(spi=0x1001, key=key,
                         tunnel_src=IPv4Address("192.0.2.1"),
                         tunnel_dst=IPv4Address("198.51.100.1"))

    # Functional path: really encrypt the bytes.
    encap = IPsecESPEncap(outbound, functional=True, name="esp")
    sink = CollectSink(name="tunnel")
    encap.connect_to(sink)

    trace = AbileneTrace(num_flows=8, seed=4)
    originals = list(trace.packets(25))
    for packet in originals:
        encap.receive(packet.copy())
    print("encrypted %d packets into the tunnel" % len(sink.packets))

    # Far end: decapsulate and verify the inner packets round-tripped.
    verified = 0
    for original, outer in zip(originals, sink.packets):
        inner = esp_decapsulate(inbound, outer)
        assert inner.ip.src == original.ip.src
        assert inner.ip.dst == original.ip.dst
        verified += 1
    print("decrypted and verified %d/%d inner packets"
          % (verified, len(originals)))
    seqs = [p.annotations["esp_seq"] for p in sink.packets]
    assert seqs == sorted(seqs)
    print("ESP sequence numbers strictly increasing: %d..%d"
          % (seqs[0], seqs[-1]))

    # Performance: what encryption costs the server (Fig. 8).
    print("\nIPsec gateway saturation (software AES-128):")
    for label, size in (("64B", 64),
                        ("Abilene", cal.ABILENE_MEAN_PACKET_BYTES)):
        result = max_loss_free_rate(WorkloadSpec.fixed(size, app=cal.IPSEC))
        print("  %-8s %5.2f Gbps (%s-bound, %.0f cycles/packet)"
              % (label, result.rate_gbps, result.bottleneck,
                 result.loads.cpu_cycles))
    plain = max_loss_free_rate(
        WorkloadSpec.fixed(64, app=cal.MINIMAL_FORWARDING))
    ipsec = max_loss_free_rate(WorkloadSpec.fixed(64, app=cal.IPSEC))
    print("encryption tax at 64B: %.1fx slower than plain forwarding"
          % (plain.rate_bps / ipsec.rate_bps))


if __name__ == "__main__":
    main()
