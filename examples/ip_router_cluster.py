#!/usr/bin/env python
"""An RB4-style cluster router doing real IP routing.

Builds a 4-node RouteBricks cluster, installs a synthetic RIB, routes a
flow-structured workload through the cluster (packets enter at the node
their ingress port belongs to, exit at the node the longest-prefix-match
selects), and reports throughput limits, reordering, and latency.

Run:  python examples/ip_router_cluster.py
"""

from repro import calibration as cal
from repro.core import RouteBricksRouter
from repro.workloads import WorkloadSpec
from repro.core.latency import latency_range_usec
from repro.routing import generate_rib
from repro.routing.rib_gen import random_destinations
from repro.workloads import FlowGenerator


def main():
    num_nodes = 4

    # A 20k-entry FIB (DIR-24-8 under the hood) mapping prefixes to the
    # cluster's external ports; in RB4 each node owns one port.
    print("building routing table...")
    rib = generate_rib(num_entries=20_000, num_ports=num_nodes, seed=1)
    print("  %d routes, %.0f MB lookup structure"
          % (len(rib), rib.memory_bytes() / 1e6))

    # Analytic operating point (Sec. 6.2).
    router = RouteBricksRouter(num_nodes=num_nodes, seed=7)
    for label, size in (("64B", 64), ("Abilene",
                                      cal.ABILENE_MEAN_PACKET_BYTES)):
        result = router.max_throughput(WorkloadSpec.fixed(size))
        print("cluster throughput (%s): %.1f Gbps aggregate, %s-bound"
              % (label, result.aggregate_gbps, result.binding))

    # Packet-level run: destinations drawn from the RIB, egress chosen by
    # an actual longest-prefix-match per packet.
    print("\nsimulating %d-node cluster with LPM-steered traffic..."
          % num_nodes)
    gen = FlowGenerator(num_flows=48, packets_per_flow=120,
                        packet_bytes=740, burst_gap_sec=3e-4, seed=2)
    destinations = random_destinations(48, rib, seed=3)
    flow_dst = {}  # five-tuple -> routable destination address

    def events():
        for index, (time, packet) in enumerate(gen.timed_packets()):
            key = packet.five_tuple()
            if key not in flow_dst:
                flow_dst[key] = destinations[len(flow_dst) % len(destinations)]
            packet.ip.dst = flow_dst[key]
            route = rib.lookup_or_raise(packet.ip.dst)
            ingress = index % num_nodes
            yield time, ingress, route.port, packet

    report = router.simulate(events())
    print("  delivered %d/%d packets (%.1f%% via an intermediate hop)"
          % (report.delivered_packets, report.offered_packets,
             report.indirect_fraction * 100))
    print("  reordered sequences: %.3f%%"
          % (report.reordered_fraction * 100))
    direct, indirect = latency_range_usec()
    print("  latency: p50 %.1f us (model: %.1f direct / %.1f indirect)"
          % (report.latency_usec.percentile(50), direct, indirect))
    for stats in report.node_stats:
        print("  node %d: in=%d out=%d transit=%d"
              % (stats["node"], stats["ingress"], stats["egress"],
                 stats["intermediate"]))


if __name__ == "__main__":
    main()
