#!/usr/bin/env python
"""Quickstart: forward packets through a simulated RouteBricks server.

Builds the paper's evaluation server (dual-socket Nehalem with multi-queue
10 G NICs), wires a minimal Click forwarding path, pushes traffic through
it, and asks the performance model for the server's saturation rates.

Run:  python examples/quickstart.py
"""

from repro import calibration as cal
from repro.click import PollDevice, RouterGraph, Scheduler, ToDevice
from repro.hw import nehalem_server
from repro.perfmodel import max_loss_free_rate
from repro.workloads import WorkloadSpec
from repro.workloads import FixedSizeWorkload


def build_forwarding_server():
    """A server forwarding port 0 -> port 1 with per-core queues."""
    server = nehalem_server(num_ports=2, queues_per_port=8)
    graph = RouterGraph()
    scheduler = Scheduler()
    # One thread per core; each polls its own RX queue and writes its own
    # TX queue -- the two RouteBricks rules hold by construction.
    for core in server.cores:
        thread = scheduler.spawn(core)
        poll = graph.add(PollDevice(server.port(0), queue_id=core.core_id,
                                    name="poll-q%d" % core.core_id))
        send = graph.add(ToDevice(server.port(1), queue_id=core.core_id,
                                  name="send-q%d" % core.core_id))
        poll.connect_to(send)
        thread.add_poll_task(poll)
        thread.own(send)
    graph.validate()
    assert scheduler.validate_rules() == []
    return server, graph, scheduler


def main():
    server, graph, scheduler = build_forwarding_server()

    # Push 10k 64-byte packets in on port 0 (RSS spreads flows across
    # the per-core RX queues) and run the schedulers.
    workload = FixedSizeWorkload(packet_bytes=64, num_flows=256, seed=1)
    for packet in workload.packets(10_000):
        server.port(0).receive(packet)
    moved = scheduler.run_rounds(50)
    queued = sum(q.enqueued for q in server.port(1).tx_queues)
    print("moved %d packets port0 -> port1 (%d queued for the wire)"
          % (moved, queued))

    # What does this server saturate at?  (Fig. 8)
    print("\nSaturation rates on the Nehalem prototype:")
    for name, app in cal.APPLICATIONS.items():
        r64 = max_loss_free_rate(WorkloadSpec.fixed(64, app=app))
        rab = max_loss_free_rate(
            WorkloadSpec.fixed(cal.ABILENE_MEAN_PACKET_BYTES, app=app))
        print("  %-11s 64B: %5.2f Gbps (%s-bound)   Abilene: %5.2f Gbps (%s-bound)"
              % (name, r64.rate_gbps, r64.bottleneck,
                 rab.rate_gbps, rab.bottleneck))

    busiest = max(server.cores, key=lambda c: c.cycles_used)
    print("\nbusiest core charged %.0f cycles across the run"
          % busiest.cycles_used)


if __name__ == "__main__":
    main()
