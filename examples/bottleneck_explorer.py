#!/usr/bin/env python
"""Explore where a packet-processing workload bottlenecks (Sec. 5.3 as a tool).

For each application and packet size, prints the per-packet load on every
system component against its empirical bound, names the binding component,
and projects the same workload onto the next-generation server.

Run:  python examples/bottleneck_explorer.py
"""

from repro import calibration as cal
from repro.analysis import deconstruct, format_table
from repro.hw.presets import NEHALEM, NEHALEM_NEXT_GEN
from repro.perfmodel import max_loss_free_rate
from repro.workloads import WorkloadSpec


def explore(app, packet_bytes):
    report = deconstruct(app, packet_bytes)
    rows = []
    for component in ("cpu", "memory", "io", "pcie", "qpi"):
        rows.append({
            "component": component,
            "load/packet": report.loads[component],
            "bound/packet": report.empirical_bounds[component],
            "headroom": report.headroom(component),
        })
    title = "%s @ %dB -> saturates at %.2f Mpps, %s-bound" % (
        app.name, packet_bytes, report.saturation_pps / 1e6,
        report.bottleneck)
    print(format_table(rows, ["component", "load/packet", "bound/packet",
                              "headroom"], title=title))
    print()


def main():
    for app in cal.APPLICATIONS.values():
        explore(app, 64)

    print("=== packet-size sweep (minimal forwarding) ===")
    rows = []
    for size in (64, 128, 256, 512, 1024, 1500):
        spec_w = WorkloadSpec.fixed(size, app=cal.MINIMAL_FORWARDING)
        now = max_loss_free_rate(spec_w, spec=NEHALEM)
        future = max_loss_free_rate(spec_w,
                                    spec=NEHALEM_NEXT_GEN, nic_limited=False)
        rows.append({"bytes": size,
                     "nehalem_gbps": now.rate_gbps,
                     "nehalem_bound": now.bottleneck,
                     "next_gen_gbps": future.rate_gbps,
                     "next_gen_bound": future.bottleneck})
    print(format_table(rows, ["bytes", "nehalem_gbps", "nehalem_bound",
                              "next_gen_gbps", "next_gen_bound"]))


if __name__ == "__main__":
    main()
