#!/usr/bin/env python3
"""CI perf-regression gate.

Compares fresh ``BENCH_*.json`` artifacts (written by ``python -m repro
obs run --quick``) against the committed baseline
``benchmarks/results/baseline.json`` and exits non-zero when any rate
scalar fell by more than the tolerance (default 10%).

Usage::

    python scripts/check_bench_regression.py \
        [--baseline benchmarks/results/baseline.json] \
        [--results-dir benchmarks/results] [--tolerance 0.10] \
        [BENCH_file.json ...]

Named files override the results-dir glob.  Exit codes: 0 no
regression, 1 regression found, 2 missing/invalid input.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import compare  # noqa: E402 (needs the path insert)


def unknown_scalar_keys(baseline_doc: dict, bench_doc: dict) -> list:
    """Scalar keys a fresh artifact carries that its baseline entry does
    not, across *all* kinds.

    ``compare_docs`` only surfaces "new" keys for the kinds it gates on
    (rate by default), so a renamed time/count/perf scalar -- or a typo
    in a new benchmark's summary keys -- used to vanish silently.  These
    come back as warnings: baselines should be regenerated to cover
    them, but an unknown key is never a failure.
    """
    base_scalars = compare.baseline_scalars_for(baseline_doc,
                                                bench_doc.get("name", ""))
    if base_scalars is None:
        return []
    return sorted(set(bench_doc.get("scalars", {})) - set(base_scalars))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_files", nargs="*",
                        help="BENCH_*.json files (default: glob "
                             "--results-dir)")
    parser.add_argument("--baseline",
                        default=str(REPO_ROOT / "benchmarks" / "results"
                                    / "baseline.json"))
    parser.add_argument("--results-dir",
                        default=str(REPO_ROOT / "benchmarks" / "results"))
    parser.add_argument("--tolerance", type=float, default=None,
                        help="fractional drop that fails (default: the "
                             "baseline's own, else %g)"
                             % compare.DEFAULT_TOLERANCE)
    parser.add_argument("--ignore-unknown-benchmarks", action="store_true",
                        help="warn (instead of erroring) on artifacts "
                             "with no baseline entry -- for full-suite "
                             "runs gated against the quick baseline")
    args = parser.parse_args(argv)

    try:
        baseline = compare.load_json(args.baseline)
    except (OSError, json.JSONDecodeError) as error:
        print("error: cannot read baseline %s: %s"
              % (args.baseline, error), file=sys.stderr)
        return 2
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(baseline.get("tolerance",
                                       compare.DEFAULT_TOLERANCE))

    paths = [pathlib.Path(p) for p in args.bench_files]
    if not paths:
        paths = sorted(pathlib.Path(args.results_dir).glob("BENCH_*.json"))
    if not paths:
        print("error: no BENCH_*.json files to check (run "
              "`python -m repro obs run --quick` first)", file=sys.stderr)
        return 2

    regressed = False
    problems = False
    all_deltas = []
    perf_deltas = []
    warnings = []
    for path in paths:
        try:
            doc = compare.load_json(str(path))
            if args.ignore_unknown_benchmarks and \
                    compare.baseline_scalars_for(
                        baseline, doc.get("name", "")) is None:
                # Ungated, but a failing scenario still fails the run.
                if doc.get("status") != "passed":
                    print("error: %s reports status %r"
                          % (path.name, doc.get("status")),
                          file=sys.stderr)
                    problems = True
                warnings.append(
                    "warning: %s has no baseline entry -- regenerate "
                    "the baseline to start gating it" % doc.get("name"))
                continue
            deltas = compare.compare_docs(baseline, doc,
                                          tolerance=tolerance)
            perf_deltas.extend(compare.compare_docs(
                baseline, doc, tolerance=tolerance, kinds=("perf",)))
        except (OSError, json.JSONDecodeError, ValueError) as error:
            print("error: %s: %s" % (path, error), file=sys.stderr)
            problems = True
            continue
        if doc.get("status") != "passed":
            print("error: %s reports status %r"
                  % (path.name, doc.get("status")), file=sys.stderr)
            problems = True
        for key in unknown_scalar_keys(baseline, doc):
            kind = doc["scalars"][key].get("kind", "count")
            warnings.append(
                "warning: %s/%s (%s) is not in the baseline -- "
                "regenerate it to start tracking this scalar"
                % (doc.get("name", path.name), key, kind))
        all_deltas.extend(deltas)
        regressed = regressed or any(d.regressed for d in deltas)

    print(compare.summarize(all_deltas))
    for line in warnings:
        print(line)
    if perf_deltas:
        # Wall-clock engine speed plus the parallel-runtime telemetry
        # (barrier_wait_seconds / lookahead_efficiency / imbalance per
        # worker count) vs the baseline machine's.  Reported only --
        # "perf" deltas classify as "info" and never gate, so a slow or
        # oddly-scheduled CI runner cannot fail the build.
        print("\nwall-clock & parallel-runtime perf "
              "(informational, never gates):")
        for delta in sorted(perf_deltas,
                            key=lambda d: (d.benchmark, d.metric)):
            print("  " + delta.describe())
    if problems:
        return 2
    if regressed:
        print("FAIL: rate regression beyond %.0f%% tolerance"
              % (tolerance * 100), file=sys.stderr)
        return 1
    print("OK: no rate regression beyond %.0f%% tolerance"
          % (tolerance * 100))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
